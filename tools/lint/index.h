#ifndef TRAP_TOOLS_LINT_INDEX_H_
#define TRAP_TOOLS_LINT_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace trap::lint {

// A lightweight whole-project declaration/include index built on the lexer.
// Like the lexer it is deliberately approximate: it does not preprocess or
// resolve overloads, it records what the token stream *looks like* -- which
// is exactly enough for the project-level rules (include-graph layering,
// include-cycle detection, Status-discipline) without making the linter
// depend on the tree it audits compiling.

// What a declared function returns, as far as the indexer can tell.
enum class ReturnKind {
  kOther = 0,
  kStatus,    // trap::common::Status
  kStatusOr,  // trap::common::StatusOr<T>
};

// One quoted `#include "..."` directive. System includes (<...>) are not
// recorded; they can never participate in project layering or cycles.
struct IncludeEdge {
  std::string target;  // the include string exactly as written
  int line = 0;
};

// One function declaration or definition, recorded by name only. The
// project index is name-keyed: an overload set whose members disagree on
// the return kind is demoted to kOther so the Status-discipline rule stays
// conservative instead of guessing.
struct FunctionDecl {
  std::string name;
  ReturnKind kind = ReturnKind::kOther;
  int line = 0;
};

// The indexed form of one translation unit.
struct FileIndex {
  std::string path;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionDecl> functions;
};

// Indexes one lexed file: its quoted #include edges and every declaration
// shaped like `Status name(`, `StatusOr<...> name(`, or a class-qualified
// variant (`Status Class::name(`), with any namespace qualifiers before the
// return type.
FileIndex IndexFile(const SourceFile& f);

// The whole-project index: every lexed file plus the function-name return
// table derived from them.
class ProjectIndex {
 public:
  // Lexes nothing itself: callers Lex() once and hand both this index and
  // the per-file rules the same SourceFile.
  void Add(const SourceFile& f);

  // Resolves the include string `target`, written in file `from`, to the
  // repo-relative path of an indexed file, or "" when the include points
  // outside the project (system headers, third-party). Tries, in order:
  // the string itself, the including file's directory, and each project
  // include root (src/, tools/, bench/, tests/, examples/).
  std::string Resolve(const std::string& from, const std::string& target) const;

  // The agreed return kind for every indexed declaration of `name`;
  // kOther when unknown or when declarations disagree.
  ReturnKind ReturnKindOf(const std::string& name) const;

  // Indexed files keyed by repo-relative path (deterministic order).
  const std::map<std::string, FileIndex>& files() const { return files_; }

 private:
  std::map<std::string, FileIndex> files_;
  std::map<std::string, ReturnKind> returns_;  // kOther == conflicting/none
};

// The module a repo-relative path belongs to for layering purposes:
// "src/engine/what_if.cc" -> "engine", "tools/lint/rules.cc" -> "tools",
// "tests/lint_test.cc" -> "tests". Empty for paths with no directory.
std::string ModuleOf(const std::string& path);

}  // namespace trap::lint

#endif  // TRAP_TOOLS_LINT_INDEX_H_
