#ifndef TRAP_ADVISOR_RL_COMMON_H_
#define TRAP_ADVISOR_RL_COMMON_H_

#include <vector>

#include "advisor/advisor.h"
#include "advisor/candidates.h"

namespace trap::advisor {

// Learning-based advisors are trained once on training workloads and then
// frozen; robustness assessment probes the frozen policy (Definition 3.3
// explicitly excludes re-training).
class LearningAdvisor : public IndexAdvisor {
 public:
  virtual void Train(const std::vector<workload::Workload>& training,
                     const TuningConstraint& constraint) = 0;
};

// State representation granularity, the design axis of Fig. 12:
//   kFine   — operator/cost statistics from the workload's current plans
//             plus per-candidate relevance and progress features (SWIRL);
//   kCoarse — column-presence counts and built flags only (DRLindex).
enum class StateGranularity { kFine, kCoarse };

// The fixed action space of a learning-based advisor: one action per
// candidate index (plus an implicit stop). Built at training time from the
// training workloads — queries outside this space at assessment time are
// exactly where robustness problems appear.
struct ActionSpace {
  std::vector<engine::Index> candidates;

  int size() const { return static_cast<int>(candidates.size()); }
};

// Builds an action space from training workloads.
// `prune_candidates` (Fig. 13): when true, only syntactically relevant
// candidates (from AllCandidates) enter; when false, the space additionally
// contains single-column indexes over every schema column (irrelevant
// actions included), up to `max_actions`.
ActionSpace BuildActionSpace(const std::vector<workload::Workload>& training,
                             const catalog::Schema& schema, bool multi_column,
                             bool prune_candidates, int max_actions,
                             int max_width = 3);

// Weighted fraction of `w`'s queries for which every column of `candidate`
// is syntactically relevant (appears among the query's indexable columns).
double CandidateRelevance(const engine::Index& candidate,
                          const workload::Workload& w);

// Encodes (workload, built configuration, constraint) into a feature vector.
class StateEncoder {
 public:
  StateEncoder(StateGranularity granularity,
               const engine::WhatIfOptimizer* optimizer,
               const ActionSpace* actions);

  int dim() const;

  // `ctx` selects the stats epoch the fine-grained plan/cost features are
  // computed against (the base epoch by default). Recommend-time callers
  // must pass their evaluation context so drifted workloads are encoded
  // under the snapshot they will be costed against.
  std::vector<double> Encode(const workload::Workload& w,
                             const engine::IndexConfig& built,
                             const TuningConstraint& constraint,
                             const common::EvalContext& ctx = {}) const;

  StateGranularity granularity() const { return granularity_; }

 private:
  StateGranularity granularity_;
  const engine::WhatIfOptimizer* optimizer_;
  const ActionSpace* actions_;
};

// The index-selection episode shared by all RL advisors: starting from the
// empty configuration, each action builds one candidate; the reward is the
// workload cost reduction of that step normalized by the no-index cost.
class IndexSelectionEnv {
 public:
  IndexSelectionEnv(const engine::WhatIfOptimizer* optimizer,
                    const ActionSpace* actions);

  // `ctx` is pinned for the episode: every cost probe (the base cost here,
  // each Step's what-if probe) runs against the epoch it carries. It must
  // outlive the episode.
  void Reset(const workload::Workload* w, const TuningConstraint& constraint,
             const common::EvalContext& ctx = {});

  // Valid actions: not built, fits the constraint. If `mask_irrelevant`,
  // additionally requires positive syntactic relevance to the workload
  // (SWIRL's invalid action masking).
  std::vector<bool> ValidActions(bool mask_irrelevant) const;

  // Applies action `a` (index into the action space); returns the reward.
  double Step(int a);

  bool Done() const;
  const engine::IndexConfig& built() const { return built_; }
  const workload::Workload& current_workload() const { return *workload_; }
  const TuningConstraint& constraint() const { return constraint_; }
  double base_cost() const { return base_cost_; }
  double current_cost() const { return current_cost_; }

 private:
  const engine::WhatIfOptimizer* optimizer_;
  const ActionSpace* actions_;
  const workload::Workload* workload_ = nullptr;
  TuningConstraint constraint_;
  common::EvalContext ctx_;
  engine::IndexConfig built_;
  double base_cost_ = 0.0;
  double current_cost_ = 0.0;
  int steps_ = 0;
};

}  // namespace trap::advisor

#endif  // TRAP_ADVISOR_RL_COMMON_H_
