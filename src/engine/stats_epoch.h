#ifndef TRAP_ENGINE_STATS_EPOCH_H_
#define TRAP_ENGINE_STATS_EPOCH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "catalog/stats_overlay.h"
#include "engine/cost_model.h"

namespace trap::engine {

// One immutable statistics epoch of a WhatIfOptimizer: the schema as an
// installed catalog::StatsOverlay sees it, a cost model compiled over that
// schema, and the overlay's content fingerprint (0 = the base epoch, i.e.
// the constructor-time schema with no overlay). Epochs are never mutated
// after construction, so a batch that snapshotted one may keep costing
// against it while another thread installs a different overlay.
struct StatsEpoch {
  // Base epoch over the caller-owned schema.
  StatsEpoch(const catalog::Schema& base, const CostParams& params)
      : model(base, params) {}
  // Overlay epoch owning its materialized schema.
  StatsEpoch(uint64_t fp, std::unique_ptr<const catalog::Schema> schema,
             const CostParams& params)
      : fingerprint(fp), owned(std::move(schema)), model(*owned, params) {}

  uint64_t fingerprint = 0;
  std::unique_ptr<const catalog::Schema> owned;  // null for the base epoch
  CostModel model;
};

// Owns every statistics epoch a WhatIfOptimizer has ever installed, keyed by
// overlay fingerprint. Epochs are retained for the registry's lifetime:
// references handed out by Current() (and the schema()/cost_model() views
// built on them) stay valid across any later Install/Reset, and
// re-installing an overlay with the same content reuses the existing epoch
// instead of materializing a new schema.
//
// Thread safety: Install/Reset/Current may race freely; Current() returns a
// consistent snapshot. Callers that need one epoch across a whole batch
// snapshot Current() once at batch entry.
class StatsEpochRegistry {
 public:
  StatsEpochRegistry(const catalog::Schema& base, const CostParams& params);

  // The active epoch; never null.
  std::shared_ptr<const StatsEpoch> Current() const;

  // Makes `overlay` the active epoch (materializing it on first sight) and
  // returns its fingerprint. An empty overlay activates the base epoch.
  uint64_t Install(const catalog::StatsOverlay& overlay);

  // Returns to the base epoch. Retained overlay epochs stay alive.
  void Reset();

 private:
  const catalog::Schema* base_;
  CostParams params_;
  std::shared_ptr<const StatsEpoch> base_epoch_;
  mutable std::mutex mu_;
  std::shared_ptr<const StatsEpoch> current_;  // guarded by mu_
  std::map<uint64_t, std::shared_ptr<const StatsEpoch>>
      retained_;  // guarded by mu_
};

}  // namespace trap::engine

#endif  // TRAP_ENGINE_STATS_EPOCH_H_
