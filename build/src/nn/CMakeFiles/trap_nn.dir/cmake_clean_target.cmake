file(REMOVE_RECURSE
  "libtrap_nn.a"
)
