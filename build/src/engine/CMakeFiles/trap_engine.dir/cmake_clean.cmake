file(REMOVE_RECURSE
  "CMakeFiles/trap_engine.dir/cost_model.cc.o"
  "CMakeFiles/trap_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/trap_engine.dir/index.cc.o"
  "CMakeFiles/trap_engine.dir/index.cc.o.d"
  "CMakeFiles/trap_engine.dir/plan.cc.o"
  "CMakeFiles/trap_engine.dir/plan.cc.o.d"
  "CMakeFiles/trap_engine.dir/selectivity.cc.o"
  "CMakeFiles/trap_engine.dir/selectivity.cc.o.d"
  "CMakeFiles/trap_engine.dir/true_cost.cc.o"
  "CMakeFiles/trap_engine.dir/true_cost.cc.o.d"
  "CMakeFiles/trap_engine.dir/what_if.cc.o"
  "CMakeFiles/trap_engine.dir/what_if.cc.o.d"
  "libtrap_engine.a"
  "libtrap_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
