#ifndef TRAP_ADVISOR_SWIRL_H_
#define TRAP_ADVISOR_SWIRL_H_

#include <memory>

#include "advisor/rl_common.h"

namespace trap::advisor {

// SWIRL [Kossmann et al., EDBT'22]: workload-aware index selection with
// policy-gradient RL (the original uses PPO; this implementation trains an
// actor-critic with advantage normalization and a clipped-style single-epoch
// update). Distinguishing design choices the paper's analysis isolates:
// the fine-grained workload state representation (Fig. 12) and invalid
// action masking over the candidate action space (Fig. 13).
struct SwirlOptions {
  StateGranularity state = StateGranularity::kFine;
  bool action_masking = true;     // invalid action masking (Fig. 13 switch)
  bool multi_column = true;
  bool prune_candidates = true;   // syntactic candidate pruning
  int max_actions = 48;
  int hidden = 64;
  double learning_rate = 1e-3;
  int episodes = 400;
  uint64_t seed = 0x50a1;
};

class SwirlAdvisor : public LearningAdvisor {
 public:
  SwirlAdvisor(const engine::WhatIfOptimizer& optimizer, SwirlOptions options);
  ~SwirlAdvisor() override;

  std::string name() const override { return "SWIRL"; }

  void Train(const std::vector<workload::Workload>& training,
             const TuningConstraint& constraint) override;

  common::StatusOr<engine::IndexConfig> TryRecommend(
      const workload::Workload& w, const TuningConstraint& constraint,
      const common::EvalContext& ctx) override;

  const ActionSpace& action_space() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trap::advisor

#endif  // TRAP_ADVISOR_SWIRL_H_
