// End-to-end integration: catalog -> engine -> advisors -> learned utility
// -> TRAP -> assessment, exercising the same pipeline as the paper's main
// experiment at a miniature scale.

#include <gtest/gtest.h>

#include "advisor/evaluation.h"
#include "advisor/registry.h"
#include "catalog/datasets.h"
#include "sql/tokenizer.h"
#include "trap/perturber.h"
#include "workload/generator.h"

namespace trap {
namespace {

namespace tc = ::trap::trap;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : schema_(catalog::MakeTpcH(0.15)),
        vocab_(schema_, 8),
        optimizer_(schema_),
        truth_(schema_),
        utility_(optimizer_, truth_),
        evaluator_(optimizer_, truth_) {
    workload::GeneratorOptions gopt;
    gopt.max_tables = 3;
    workload::QueryGenerator gen(vocab_, gopt, 0xabc);
    pool_ = gen.GeneratePool(50);
    common::Rng rng(0xabd);
    for (int i = 0; i < 6; ++i) {
      training_.push_back(workload::SampleWorkload(pool_, 5, rng));
    }
    for (int i = 0; i < 4; ++i) {
      tests_.push_back(workload::SampleWorkload(pool_, 5, rng));
    }
    utility_.Train(pool_, {engine::IndexConfig()});
  }

  advisor::TuningConstraint Constraint() const {
    return advisor::TuningConstraint::Storage(schema_.DataSizeBytes() / 2);
  }

  catalog::Schema schema_;
  sql::Vocabulary vocab_;
  engine::WhatIfOptimizer optimizer_;
  engine::TrueCostModel truth_;
  gbdt::LearnedUtilityModel utility_;
  advisor::RobustnessEvaluator evaluator_;
  std::vector<sql::Query> pool_;
  std::vector<workload::Workload> training_;
  std::vector<workload::Workload> tests_;
};

TEST_F(IntegrationTest, FullPipelineProducesBoundedValidPerturbations) {
  auto victim = *advisor::MakeAdvisor("Extend", optimizer_);
  tc::GeneratorConfig config;
  config.method = tc::GenerationMethod::kTrap;
  config.constraint = tc::PerturbationConstraint::kSharedTable;
  config.epsilon = 5;
  config.agent.embed_dim = 24;
  config.agent.hidden_dim = 24;
  config.pretrain.num_pairs = 60;
  config.pretrain.epochs = 1;
  config.rl.epochs = 4;
  config.rl.workloads_per_epoch = 2;
  config.rl.theta = 0.02;
  tc::AdversarialWorkloadGenerator generator(vocab_, config);
  generator.Fit(victim.get(), nullptr, &optimizer_, &utility_, pool_,
                training_, Constraint());

  int assessed = 0;
  for (const workload::Workload& w : tests_) {
    double u = evaluator_.IndexUtility(*victim, nullptr, w, Constraint());
    workload::Workload perturbed = generator.Generate(w);
    ASSERT_EQ(perturbed.size(), w.size());
    for (int i = 0; i < w.size(); ++i) {
      const sql::Query& original = w.queries[static_cast<size_t>(i)].query;
      const sql::Query& pq = perturbed.queries[static_cast<size_t>(i)].query;
      EXPECT_TRUE(sql::ValidateQuery(pq, schema_));
      EXPECT_LE(sql::EditDistance(sql::ToTokens(original, vocab_),
                                  sql::ToTokens(pq, vocab_)),
                config.epsilon);
      // Perturbations never touch the join graph (Definition 3.4 footnote).
      EXPECT_EQ(pq.joins, original.joins);
      EXPECT_EQ(pq.tables, original.tables);
    }
    if (u > 0.1) {
      double u_prime =
          evaluator_.IndexUtility(*victim, nullptr, perturbed, Constraint());
      (void)u_prime;  // IUDR well-defined
      ++assessed;
    }
  }
  EXPECT_GT(assessed, 0);
}

TEST_F(IntegrationTest, RewardTraceHasConfiguredLength) {
  auto victim = *advisor::MakeAdvisor("AutoAdmin", optimizer_);
  tc::GeneratorConfig config;
  config.method = tc::GenerationMethod::kSeq2Seq;
  config.constraint = tc::PerturbationConstraint::kColumnConsistent;
  config.epsilon = 4;
  config.agent.embed_dim = 24;
  config.agent.hidden_dim = 24;
  config.rl.epochs = 3;
  config.rl.workloads_per_epoch = 2;
  config.rl.theta = 0.0;
  tc::AdversarialWorkloadGenerator generator(vocab_, config);
  generator.Fit(victim.get(), nullptr, &optimizer_, &utility_, pool_,
                training_, Constraint());
  EXPECT_EQ(generator.rl_trace().mean_reward_per_epoch.size(), 3u);
}

TEST_F(IntegrationTest, ValueOnlyPerturbationPreservesTemplates) {
  auto victim = *advisor::MakeAdvisor("DTA", optimizer_);
  tc::GeneratorConfig config;
  config.method = tc::GenerationMethod::kRandom;
  config.constraint = tc::PerturbationConstraint::kValueOnly;
  config.epsilon = 3;
  tc::AdversarialWorkloadGenerator generator(vocab_, config);
  generator.Fit(victim.get(), nullptr, &optimizer_, &utility_, pool_,
                training_, Constraint());
  workload::Workload perturbed = generator.Generate(tests_[0]);
  for (int i = 0; i < perturbed.size(); ++i) {
    EXPECT_EQ(workload::TemplateSignature(
                  tests_[0].queries[static_cast<size_t>(i)].query),
              workload::TemplateSignature(
                  perturbed.queries[static_cast<size_t>(i)].query));
  }
}

TEST_F(IntegrationTest, LearningAdvisorVulnerableToColumnDrift) {
  // The paper's headline finding at miniature scale: a frozen-action-space
  // learner loses far more utility than an adaptive heuristic when columns
  // drift. Uses random column-consistent perturbations (no RL needed).
  advisor::AdvisorSuite::SuiteOptions so;
  so.rl_episodes = 250;
  so.max_actions = 64;
  advisor::AdvisorSuite suite(optimizer_, 0x17e, so);
  advisor::TuningConstraint count =
      advisor::TuningConstraint::IndexCount(4, schema_.DataSizeBytes() / 2);
  suite.TrainLearners(training_, Constraint(), count);

  common::Rng rng(0x5ee);
  auto random_perturb = [&](const workload::Workload& w) {
    workload::Workload out;
    for (const workload::WorkloadQuery& wq : w.queries) {
      tc::ReferenceTree tree(wq.query, vocab_,
                             tc::PerturbationConstraint::kColumnConsistent, 5);
      while (!tree.Done()) tree.Advance(rng.Choice(tree.LegalTokens()));
      out.queries.push_back(
          workload::WorkloadQuery{tree.Materialize(), wq.weight});
    }
    return out;
  };

  advisor::IndexAdvisor* learner = suite.advisor("DRLindex");
  advisor::IndexAdvisor* heuristic = suite.advisor("Extend");
  double learner_drop = 0.0, heuristic_drop = 0.0;
  int n = 0;
  for (const workload::Workload& w : tests_) {
    double ul = evaluator_.IndexUtility(*learner, nullptr, w, count);
    double uh = evaluator_.IndexUtility(*heuristic, nullptr, w, Constraint());
    if (ul <= 0.1 || uh <= 0.1) continue;
    for (int a = 0; a < 3; ++a) {
      workload::Workload wp = random_perturb(w);
      learner_drop += advisor::RobustnessEvaluator::Iudr(
          ul, evaluator_.IndexUtility(*learner, nullptr, wp, count));
      heuristic_drop += advisor::RobustnessEvaluator::Iudr(
          uh, evaluator_.IndexUtility(*heuristic, nullptr, wp, Constraint()));
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(learner_drop / n, heuristic_drop / n);
}

}  // namespace
}  // namespace trap
