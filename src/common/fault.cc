#include "common/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/check.h"
#include "common/rng.h"

namespace trap::common {

namespace {

struct SiteNameEntry {
  FaultSite site;
  const char* name;
};

constexpr SiteNameEntry kSiteNames[] = {
    {FaultSite::kWhatIfCostError, "engine.whatif.cost_error"},
    {FaultSite::kWhatIfTimeout, "engine.whatif.timeout"},
    {FaultSite::kAdvisorRecommendFail, "advisor.recommend.fail"},
    {FaultSite::kAdvisorRecommendHang, "advisor.recommend.hang"},
    {FaultSite::kCacheShardPoison, "cache.shard.poison"},
    {FaultSite::kPerturberInvalidTree, "perturber.invalid_tree"},
    {FaultSite::kWhatIfInvertBenefit, "engine.whatif.invert_benefit"},
    {FaultSite::kCampaignWorkerCrash, "worker.crash"},
    {FaultSite::kCampaignWorkerHang, "worker.hang"},
    {FaultSite::kCampaignWorkerGarbageFrame, "worker.garbage_frame"},
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) ==
              static_cast<size_t>(kNumFaultSites));

}  // namespace

const char* FaultSiteName(FaultSite site) {
  for (const SiteNameEntry& e : kSiteNames) {
    if (e.site == site) return e.name;
  }
  return "?";
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (const SiteNameEntry& e : kSiteNames) {
    if (name == e.name) return e.site;
  }
  return std::nullopt;
}

namespace {

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

bool ParseInt64(std::string_view s, std::int64_t* out) {
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtoll(buf.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

}  // namespace

std::optional<FaultSpec> ParseFaultSpec(std::string_view spec,
                                        std::uint64_t seed,
                                        std::string* error) {
  FaultSpec out;
  out.seed = seed;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string_view entry = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (!entry.empty()) {
      FaultSiteConfig cfg;
      size_t at = entry.find('@');
      std::string_view name =
          entry.substr(0, at == std::string_view::npos ? entry.size() : at);
      std::optional<FaultSite> site = FaultSiteFromName(name);
      if (!site.has_value()) {
        if (error != nullptr) {
          *error = "unknown fault site '" + std::string(name) + "'";
        }
        return std::nullopt;
      }
      cfg.site = *site;
      while (at != std::string_view::npos) {
        size_t next_at = entry.find('@', at + 1);
        std::string_view opt = entry.substr(
            at + 1, next_at == std::string_view::npos ? std::string_view::npos
                                                      : next_at - at - 1);
        if (opt.substr(0, 2) == "p=") {
          double p = 0.0;
          if (!ParseDouble(opt.substr(2), &p) || p < 0.0 || p > 1.0) {
            if (error != nullptr) {
              *error = "bad probability in fault entry '" + std::string(entry) +
                       "' (want p in [0,1])";
            }
            return std::nullopt;
          }
          cfg.probability = p;
        } else if (opt.substr(0, 6) == "limit=") {
          std::int64_t n = 0;
          if (!ParseInt64(opt.substr(6), &n) || n < 0) {
            if (error != nullptr) {
              *error = "bad limit in fault entry '" + std::string(entry) +
                       "' (want a non-negative integer)";
            }
            return std::nullopt;
          }
          cfg.limit = n;
        } else {
          if (error != nullptr) {
            *error = "unknown option '" + std::string(opt) +
                     "' in fault entry '" + std::string(entry) + "'";
          }
          return std::nullopt;
        }
        at = next_at;
      }
      out.sites.push_back(cfg);
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry state
// ---------------------------------------------------------------------------

struct FaultRegistry::SiteState {
  // Probability is stored under a seqlock-free scheme: sites are configured
  // from quiesced contexts (tests, CLI startup), so plain atomics with
  // relaxed ordering are enough for the hot-path reads.
  std::atomic<double> probability{0.0};
  // Remaining firings; negative = unlimited.
  std::atomic<std::int64_t> remaining{-1};
  std::atomic<std::int64_t> hits{0};
};

namespace {

struct RegistryData {
  FaultRegistry::SiteState sites[kNumFaultSites];
  std::atomic<std::uint64_t> seed{0};
  // Bit i set = site i armed. Bit 63 = initialized-from-env. With nothing
  // armed the hot path is a single relaxed load of this mask.
  std::atomic<std::uint64_t> armed_mask{0};
  std::mutex config_mu;
};

constexpr std::uint64_t kInitBit = std::uint64_t{1} << 63;

RegistryData& Data() {
  static RegistryData data;
  return data;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry::SiteState* FaultRegistry::state(FaultSite site) const {
  return &Data().sites[static_cast<int>(site)];
}

void FaultRegistry::Configure(const FaultSpec& spec) {
  RegistryData& d = Data();
  std::lock_guard<std::mutex> lock(d.config_mu);
  std::uint64_t mask = kInitBit;  // configuring overrides env init
  for (int i = 0; i < kNumFaultSites; ++i) {
    d.sites[i].probability.store(0.0, std::memory_order_relaxed);
    d.sites[i].remaining.store(-1, std::memory_order_relaxed);
    d.sites[i].hits.store(0, std::memory_order_relaxed);
  }
  d.seed.store(spec.seed, std::memory_order_relaxed);
  for (const FaultSiteConfig& cfg : spec.sites) {
    SiteState& s = d.sites[static_cast<int>(cfg.site)];
    s.probability.store(cfg.probability, std::memory_order_relaxed);
    s.remaining.store(cfg.limit, std::memory_order_relaxed);
    if (cfg.probability > 0.0 && cfg.limit != 0) {
      mask |= std::uint64_t{1} << static_cast<int>(cfg.site);
    }
  }
  d.armed_mask.store(mask, std::memory_order_release);
}

void FaultRegistry::EnsureInitFromEnv() {
  RegistryData& d = Data();
  if ((d.armed_mask.load(std::memory_order_acquire) & kInitBit) != 0) return;
  std::lock_guard<std::mutex> lock(d.config_mu);
  if ((d.armed_mask.load(std::memory_order_acquire) & kInitBit) != 0) return;
  FaultSpec spec;
  // Legacy hook first: TRAP_TESTING_FAULT=invert_index_benefit.
  if (const char* env = std::getenv("TRAP_TESTING_FAULT");
      env != nullptr && *env != '\0') {
    std::optional<InjectedFault> parsed = FaultFromName(env);
    TRAP_CHECK_MSG(parsed.has_value(), env);
    if (*parsed == InjectedFault::kInvertIndexBenefit) {
      spec.sites.push_back({FaultSite::kWhatIfInvertBenefit, 1.0, -1});
    }
  }
  // Registry spec: TRAP_FAULTS="site@p=P@limit=N,..." + TRAP_FAULT_SEED.
  if (const char* env = std::getenv("TRAP_FAULTS");
      env != nullptr && *env != '\0') {
    std::uint64_t seed = 0;
    if (const char* seed_env = std::getenv("TRAP_FAULT_SEED");
        seed_env != nullptr && *seed_env != '\0') {
      char* end = nullptr;
      seed = std::strtoull(seed_env, &end, 10);
      TRAP_CHECK_MSG(end != nullptr && *end == '\0', seed_env);
    }
    std::string error;
    std::optional<FaultSpec> parsed = ParseFaultSpec(env, seed, &error);
    TRAP_CHECK_MSG(parsed.has_value(), error.c_str());
    spec.seed = parsed->seed;
    for (const FaultSiteConfig& cfg : parsed->sites) {
      spec.sites.push_back(cfg);
    }
  }
  // Unlock-free re-entry into Configure would deadlock on config_mu; inline
  // the same logic here while holding the lock.
  std::uint64_t mask = kInitBit;
  d.seed.store(spec.seed, std::memory_order_relaxed);
  for (const FaultSiteConfig& cfg : spec.sites) {
    SiteState& s = d.sites[static_cast<int>(cfg.site)];
    s.probability.store(cfg.probability, std::memory_order_relaxed);
    s.remaining.store(cfg.limit, std::memory_order_relaxed);
    if (cfg.probability > 0.0 && cfg.limit != 0) {
      mask |= std::uint64_t{1} << static_cast<int>(cfg.site);
    }
  }
  d.armed_mask.store(mask, std::memory_order_release);
}

bool FaultRegistry::armed(FaultSite site) const {
  std::uint64_t mask = Data().armed_mask.load(std::memory_order_relaxed);
  return (mask & (std::uint64_t{1} << static_cast<int>(site))) != 0;
}

std::int64_t FaultRegistry::hits(FaultSite site) const {
  return state(site)->hits.load(std::memory_order_relaxed);
}

std::int64_t FaultRegistry::total_hits() const {
  std::int64_t total = 0;
  for (int i = 0; i < kNumFaultSites; ++i) {
    total += Data().sites[i].hits.load(std::memory_order_relaxed);
  }
  return total;
}

bool FaultRegistry::ShouldFire(FaultSite site, std::uint64_t key) {
  RegistryData& d = Data();
  std::uint64_t mask = d.armed_mask.load(std::memory_order_relaxed);
  if ((mask & (std::uint64_t{1} << static_cast<int>(site))) == 0) return false;
  SiteState& s = *state(site);
  double p = s.probability.load(std::memory_order_relaxed);
  if (p <= 0.0) return false;
  // Deterministic draw: pure function of (seed, site, key). p >= 1 always
  // fires regardless of the draw so "p=1" is exactly "every consultation".
  if (p < 1.0) {
    std::uint64_t seed = d.seed.load(std::memory_order_relaxed);
    std::uint64_t h = HashCombine(
        seed, HashCombine(static_cast<std::uint64_t>(site) + 1, key));
    if (HashToUnit(h) >= p) return false;
  }
  // Trigger-count cap: an atomic countdown. Which concurrent draws win the
  // last slots is scheduling-dependent; limit-free specs stay deterministic.
  std::int64_t remaining = s.remaining.load(std::memory_order_relaxed);
  while (remaining >= 0) {
    if (remaining == 0) return false;
    if (s.remaining.compare_exchange_weak(remaining, remaining - 1,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  s.hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultShouldFire(FaultSite site, std::uint64_t key) {
  FaultRegistry& r = FaultRegistry::Global();
  r.EnsureInitFromEnv();
  return r.ShouldFire(site, key);
}

ScopedFaultSpec::ScopedFaultSpec(std::string_view spec, std::uint64_t seed) {
  std::string error;
  std::optional<FaultSpec> parsed = ParseFaultSpec(spec, seed, &error);
  TRAP_CHECK_MSG(parsed.has_value(), error.c_str());
  FaultRegistry::Global().Configure(*parsed);
}

ScopedFaultSpec::~ScopedFaultSpec() { FaultRegistry::Global().Reset(); }

// ---------------------------------------------------------------------------
// Legacy single-fault API
// ---------------------------------------------------------------------------

const char* FaultName(InjectedFault f) {
  switch (f) {
    case InjectedFault::kNone: return "none";
    case InjectedFault::kInvertIndexBenefit: return "invert_index_benefit";
  }
  return "?";
}

std::optional<InjectedFault> FaultFromName(std::string_view name) {
  if (name == "none") return InjectedFault::kNone;
  if (name == "invert_index_benefit") return InjectedFault::kInvertIndexBenefit;
  return std::nullopt;
}

InjectedFault ActiveFault() {
  FaultRegistry& r = FaultRegistry::Global();
  r.EnsureInitFromEnv();
  return r.armed(FaultSite::kWhatIfInvertBenefit)
             ? InjectedFault::kInvertIndexBenefit
             : InjectedFault::kNone;
}

void SetInjectedFault(InjectedFault f) {
  FaultSpec spec;
  if (f == InjectedFault::kInvertIndexBenefit) {
    spec.sites.push_back({FaultSite::kWhatIfInvertBenefit, 1.0, -1});
  }
  FaultRegistry::Global().Configure(spec);
}

}  // namespace trap::common
