# Empty dependencies file for trap_bench_harness.
# This may be replaced when dependencies are built.
