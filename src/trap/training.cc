#include "trap/training.h"

#include <algorithm>
#include <cmath>

namespace trap::trap {

std::vector<double> Pretrain(TrapAgent& agent,
                             const std::vector<sql::Query>& pool,
                             PerturbationConstraint constraint, int epsilon,
                             const PretrainOptions& options) {
  TRAP_CHECK(!pool.empty());
  common::Rng rng(options.seed);
  const sql::Vocabulary& vocab = agent.vocab();

  // Synthetic corpus: random tree-legal perturbations of pool queries.
  struct Pair {
    const sql::Query* query;
    std::vector<int> choices;
  };
  std::vector<Pair> corpus;
  corpus.reserve(static_cast<size_t>(options.num_pairs));
  for (int i = 0; i < options.num_pairs; ++i) {
    const sql::Query& q = rng.Choice(pool);
    ReferenceTree tree(q, vocab, constraint, epsilon);
    std::vector<int> choices;
    while (!tree.Done()) {
      int id = rng.Choice(tree.LegalTokens());
      choices.push_back(id);
      tree.Advance(id);
    }
    corpus.push_back(Pair{&q, std::move(choices)});
  }

  nn::Adam optimizer(agent.store().parameters(), options.learning_rate);
  optimizer.set_max_grad_norm(5.0);
  std::vector<double> trace;
  std::vector<int> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double total_nll = 0.0;
    for (int idx : order) {
      const Pair& pair = corpus[static_cast<size_t>(idx)];
      nn::Graph g;
      nn::Graph::VarId nll = agent.ForcedNll(
          g, ReferenceTree(*pair.query, vocab, constraint, epsilon),
          pair.choices);
      total_nll += g.value(nll).at(0, 0);
      g.Backward(nll);
      optimizer.Step();
    }
    trace.push_back(total_nll / static_cast<double>(corpus.size()));
  }
  return trace;
}

RlTrainer::RlTrainer(TrapAgent* agent, advisor::IndexAdvisor* victim,
                     advisor::IndexAdvisor* victim_baseline,
                     const engine::WhatIfOptimizer* optimizer,
                     const gbdt::LearnedUtilityModel* utility,
                     PerturbationConstraint constraint, int epsilon,
                     advisor::TuningConstraint tuning, RlOptions options)
    : agent_(agent),
      victim_(victim),
      baseline_(victim_baseline),
      optimizer_(optimizer),
      utility_(utility),
      constraint_(constraint),
      epsilon_(epsilon),
      tuning_(tuning),
      options_(options) {
  if (options_.use_learned_utility) {
    TRAP_CHECK_MSG(utility_ != nullptr && utility_->trained(),
                   "learned utility model required");
  }
}

double RlTrainer::CostOf(const workload::Workload& w,
                         const engine::IndexConfig& config) const {
  if (options_.use_learned_utility) {
    return utility_->PredictWorkloadCost(w, config);
  }
  return optimizer_->WorkloadCost(w, config);
}

double RlTrainer::EstimatedUtility(const workload::Workload& w) const {
  engine::IndexConfig selected = victim_->Recommend(w, tuning_);
  engine::IndexConfig base;
  if (baseline_ != nullptr) base = baseline_->Recommend(w, tuning_);
  double base_cost = CostOf(w, base);
  if (base_cost <= 0.0) return 0.0;
  return 1.0 - CostOf(w, selected) / base_cost;
}

double RlTrainer::EstimatedIudr(const workload::Workload& w,
                                const workload::Workload& perturbed) const {
  double u = EstimatedUtility(w);
  if (u == 0.0) return 0.0;
  return 1.0 - EstimatedUtility(perturbed) / u;
}

RlTrace RlTrainer::Train(const std::vector<workload::Workload>& training) {
  TRAP_CHECK(!training.empty());
  common::Rng rng(options_.seed);
  nn::Adam optimizer(agent_->store().parameters(), options_.learning_rate);
  optimizer.set_max_grad_norm(5.0);
  const sql::Vocabulary& vocab = agent_->vocab();

  RlTrace trace;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    double reward_sum = 0.0;
    int reward_count = 0;
    for (int k = 0; k < options_.workloads_per_epoch; ++k) {
      const workload::Workload& w = training[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(training.size()) - 1))];
      // Definition 3.3: only properly-operating workloads are usable.
      double u = EstimatedUtility(w);
      if (u <= options_.theta) continue;

      // Sampled trajectory over every query of the workload.
      nn::Graph g;
      nn::Graph::VarId logp_sum = g.Input(nn::Matrix(1, 1));
      workload::Workload sampled;
      for (const workload::WorkloadQuery& wq : w.queries) {
        TrapAgent::EpisodeResult r = [&] {
          ReferenceTree tree(wq.query, vocab, constraint_, epsilon_);
          nn::Graph::VarId before = logp_sum;
          TrapAgent::EpisodeResult res =
              agent_->RunEpisode(&g, std::move(tree), TrapAgent::Mode::kSample,
                                 &rng);
          logp_sum = g.Add(before, res.log_prob_var);
          return res;
        }();
        std::optional<sql::Query> pq = sql::FromTokens(r.output, vocab);
        TRAP_CHECK(pq.has_value());
        sampled.queries.push_back(workload::WorkloadQuery{*pq, wq.weight});
      }
      double reward = EstimatedIudr(w, sampled);

      double baseline_reward = 0.0;
      if (options_.self_critic) {
        baseline_reward = EstimatedIudr(w, Perturb(w));
      }
      reward_sum += reward;
      ++reward_count;

      nn::Graph::VarId loss = g.Scale(logp_sum, -(reward - baseline_reward));
      g.Backward(loss);
      optimizer.Step();
    }
    trace.mean_reward_per_epoch.push_back(
        reward_count > 0 ? reward_sum / reward_count : 0.0);
  }
  return trace;
}

workload::Workload RlTrainer::Perturb(const workload::Workload& w,
                                      const common::EvalContext& ctx) const {
  const sql::Vocabulary& vocab = agent_->vocab();
  workload::Workload out;
  for (const workload::WorkloadQuery& wq : w.queries) {
    ReferenceTree tree(wq.query, vocab, constraint_, epsilon_);
    TrapAgent::EpisodeResult r =
        agent_->RunEpisode(nullptr, std::move(tree), TrapAgent::Mode::kGreedy,
                           nullptr, ctx);
    std::optional<sql::Query> pq = sql::FromTokens(r.output, vocab);
    TRAP_CHECK(pq.has_value());
    out.queries.push_back(workload::WorkloadQuery{*pq, wq.weight});
  }
  return out;
}

workload::Workload RlTrainer::PerturbSampled(
    const workload::Workload& w, common::Rng& rng,
    const common::EvalContext& ctx) const {
  const sql::Vocabulary& vocab = agent_->vocab();
  workload::Workload out;
  for (const workload::WorkloadQuery& wq : w.queries) {
    ReferenceTree tree(wq.query, vocab, constraint_, epsilon_);
    TrapAgent::EpisodeResult r =
        agent_->RunEpisode(nullptr, std::move(tree), TrapAgent::Mode::kSample,
                           &rng, ctx);
    std::optional<sql::Query> pq = sql::FromTokens(r.output, vocab);
    TRAP_CHECK(pq.has_value());
    out.queries.push_back(workload::WorkloadQuery{*pq, wq.weight});
  }
  return out;
}

}  // namespace trap::trap
