#include "obs/metrics.h"

#include <bit>

#include "common/check.h"
#include "common/rng.h"

namespace trap::obs {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(value));
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

bool IsValidMetricName(std::string_view name) {
  // trap\.[a-z_]+(\.[a-z_]+)+ -- at least three segments, first "trap".
  size_t pos = 0;
  int segments = 0;
  while (pos <= name.size()) {
    size_t dot = name.find('.', pos);
    std::string_view seg = name.substr(
        pos, dot == std::string_view::npos ? std::string_view::npos
                                           : dot - pos);
    if (seg.empty()) return false;
    if (segments == 0) {
      if (seg != "trap") return false;
    } else {
      for (char c : seg) {
        if (!((c >= 'a' && c <= 'z') || c == '_')) return false;
      }
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return segments >= 3;
}

std::string MetricSegment(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (c >= 'a' && c <= 'z') {
      out.push_back(c);
    } else if (out.empty() || out.back() != '_') {
      out.push_back('_');
    }
  }
  if (out.empty()) out.push_back('_');
  return out;
}

uint64_t StringHash(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h = common::HashCombine(h, static_cast<uint64_t>(
                                   static_cast<unsigned char>(c)));
  }
  return common::HashCombine(h, s.size());
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry;
  return *registry;
}

Counter* MetricRegistry::counter(std::string_view name, bool deterministic) {
  TRAP_CHECK_MSG(IsValidMetricName(name), "invalid metric name");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.counter = std::make_unique<Counter>();
    entry.deterministic = deterministic;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  TRAP_CHECK_MSG(it->second.counter != nullptr,
                 "metric registered as a histogram");
  return it->second.counter.get();
}

Histogram* MetricRegistry::histogram(std::string_view name,
                                     bool deterministic) {
  TRAP_CHECK_MSG(IsValidMetricName(name), "invalid metric name");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.histogram = std::make_unique<Histogram>();
    entry.deterministic = deterministic;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  TRAP_CHECK_MSG(it->second.histogram != nullptr,
                 "metric registered as a counter");
  return it->second.histogram.get();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size() * 2);
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      out.push_back({name, entry.counter->value(), entry.deterministic});
    } else {
      out.push_back(
          {name + ".count", entry.histogram->count(), entry.deterministic});
      out.push_back(
          {name + ".sum", entry.histogram->sum(), entry.deterministic});
    }
  }
  return out;
}

uint64_t MetricRegistry::Digest(const std::vector<MetricSample>& snapshot) {
  uint64_t h = 0x0b5e55ed;
  for (const MetricSample& s : snapshot) {
    if (!s.deterministic) continue;
    h = common::HashCombine(h, StringHash(s.name));
    h = common::HashCombine(h, static_cast<uint64_t>(s.value));
  }
  return h;
}

std::vector<MetricSample> GlobalSnapshotWithDerived() {
  std::vector<MetricSample> samples = MetricRegistry::Global().Snapshot();
  int64_t calls = 0;
  int64_t misses = 0;
  bool have_calls = false;
  bool have_misses = false;
  for (const MetricSample& s : samples) {
    if (s.name == "trap.whatif.calls") {
      calls = s.value;
      have_calls = true;
    } else if (s.name == "trap.whatif.cache.misses") {
      misses = s.value;
      have_misses = true;
    }
  }
  if (have_calls && have_misses) {
    MetricSample hits{"trap.whatif.cache.hits", calls - misses, true};
    auto pos = samples.begin();
    while (pos != samples.end() && pos->name < hits.name) ++pos;
    samples.insert(pos, hits);
  }
  return samples;
}

}  // namespace trap::obs
