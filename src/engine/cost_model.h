#ifndef TRAP_ENGINE_COST_MODEL_H_
#define TRAP_ENGINE_COST_MODEL_H_

#include <memory>
#include <optional>

#include "catalog/schema.h"
#include "engine/index.h"
#include "engine/plan.h"
#include "engine/query_shape.h"
#include "sql/query.h"

namespace trap::engine {

// Cost-model constants, PostgreSQL-flavoured.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  double page_size_bytes = 8192.0;
};

// Analytical System-R-style optimizer and cost model. Produces a physical
// plan for a SPAJ query under a hypothetical index configuration:
//
//   * per-table access paths: sequential scan vs (covering) index scan,
//     with prefix-based predicate matching (equalities extend the prefix,
//     the first range predicate closes it); when the plan could avoid a
//     sort, paths are compared on access cost plus the sort they would
//     leave behind, so a cheaper-to-scan index never displaces an
//     order-providing one at a net loss;
//   * greedy left-deep join ordering: start from the smallest filtered
//     relation, then repeatedly attach the connected relation with the
//     smallest estimated join output, choosing between hash join and index
//     nested-loop join per step. The join order depends only on
//     cardinality estimates (never on the index configuration), which
//     keeps plan costs monotone in the index set — a property the fuzzing
//     oracles in src/testing check over thousands of generated queries;
//   * hash aggregation for GROUP BY; explicit sort for ORDER BY unless a
//     single-table plan already scans an index whose prefix is the ORDER BY
//     column list.
//
// Predicates under an OR conjunction and `<>` predicates are not sargable:
// the model falls back to filtering above a sequential scan, which is what
// makes the paper's six query-change types (Section VI-C) hurt index
// utility.
//
// The hot path is split in two: ComputeShape() precompiles everything that
// is independent of the index configuration into a QueryShape (once per
// query), and the shape-based QueryCost() kernel evaluates a configuration
// against a shape with zero heap allocations. Plan() and the kernel share
// one arithmetic site (ChooseAccess / ChooseProbe / ChooseJoin), so
// Plan(q, config)->cost == QueryCost(q, config) bit-for-bit, with or
// without a precompiled shape.
class CostModel {
 public:
  explicit CostModel(const catalog::Schema& schema, CostParams params = {});

  // Precompiles the configuration-independent derived structures of `q`.
  QueryShape ComputeShape(const sql::Query& q) const;

  // The allocation-free cost kernel: total cost of the best plan for the
  // precompiled `shape` under `config`.
  double QueryCost(const QueryShape& shape, const IndexConfig& config) const;

  // Builds the minimum-cost plan for a precompiled shape.
  std::unique_ptr<PlanNode> Plan(const QueryShape& shape,
                                 const IndexConfig& config) const;

  // Convenience forms that compile the shape on the fly (identical results).
  std::unique_ptr<PlanNode> Plan(const sql::Query& q,
                                 const IndexConfig& config) const;
  double QueryCost(const sql::Query& q, const IndexConfig& config) const;

  const catalog::Schema& schema() const { return *schema_; }
  const CostParams& params() const { return params_; }

  // Heap pages of table `t`.
  double TablePages(int t) const;

 private:
  // Configuration-dependent choice of access path for one table. The sole
  // arithmetic site for scan costs: both Plan() and the cost kernel consume
  // these numbers, which keeps them bit-identical.
  struct AccessChoice {
    PlanNodeType type = PlanNodeType::kSeqScan;
    const Index* index = nullptr;  // null for a sequential scan
    double cost = 0.0;
    bool provides_order = false;
  };
  AccessChoice ChooseAccess(const QueryShape& shape, const TableShape& ts,
                            const IndexConfig& config) const;

  // Index-nested-loop probe cost per outer row (index == nullptr if no
  // usable index exists on the inner join key).
  struct ProbeChoice {
    const Index* index = nullptr;
    double cost_per_row = 0.0;
  };
  ProbeChoice ChooseProbe(const QueryShape& shape, const JoinStepShape& step,
                          const IndexConfig& config) const;

  // Configuration-dependent choice for one join step given the outer side's
  // cumulative cost and cardinality.
  struct JoinChoice {
    double cost = 0.0;  // cumulative cost after the join
    bool is_inlj = false;
    AccessChoice inner_access;         // hash side (always computed)
    const Index* probe_index = nullptr;  // set when is_inlj
  };
  JoinChoice ChooseJoin(const QueryShape& shape, const JoinStepShape& step,
                        double outer_cost, double outer_card,
                        const IndexConfig& config) const;

  // Materializes an access choice as a plan node (Plan() only).
  std::unique_ptr<PlanNode> MakeAccessNode(const TableShape& ts,
                                           const AccessChoice& c) const;

  double BTreeDescendCost(int64_t rows) const;

  // Cost of explicitly sorting `card` rows (the ORDER BY sort node).
  double SortCost(double card) const;

  const catalog::Schema* schema_;
  CostParams params_;
};

}  // namespace trap::engine

#endif  // TRAP_ENGINE_COST_MODEL_H_
