// Root of the acyclic fixture tree (top.h -> base.h): the clean
// counterpart to cycle/.
#pragma once

#include "base.h"

inline int FixtureTop() { return FixtureBase() + 1; }
