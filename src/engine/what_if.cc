#include "engine/what_if.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/fault.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace trap::engine {

namespace {

// Hot-path metric handles, resolved once (registry pointers are stable).
struct WhatIfMetrics {
  obs::Counter* calls;
  obs::Counter* misses;
  obs::Counter* shape_misses;
  obs::Counter* collisions;
  obs::Counter* poison_heals;
  obs::Counter* batches;
  obs::Counter* dup_configs;
  obs::Counter* dup_pairs;
  obs::Histogram* batch_items;
};

const WhatIfMetrics& Metrics() {
  static const WhatIfMetrics* m = [] {
    obs::MetricRegistry& r = obs::MetricRegistry::Global();
    // Collision detections and checksum heals depend on which of two racing
    // threads fills an entry first, so they are best-effort; everything
    // else counts logical work.
    return new WhatIfMetrics{  // NOLINT(no-heap-on-hot-path): one-time static init
        r.counter("trap.whatif.calls"),
        r.counter("trap.whatif.cache.misses"),
        r.counter("trap.whatif.shape.misses"),
        r.counter("trap.whatif.cache.collisions", /*deterministic=*/false),
        r.counter("trap.whatif.cache.poison_heals", /*deterministic=*/false),
        r.counter("trap.whatif.batch.count"),
        r.counter("trap.whatif.batch.dup_configs"),
        r.counter("trap.whatif.batch.dup_pairs"),
        r.histogram("trap.whatif.batch.items"),
    };
  }();
  return *m;
}

}  // namespace

WhatIfOptimizer::WhatIfOptimizer(const catalog::Schema& schema,
                                 CostParams params)
    : epochs_(schema, params) {}

uint64_t WhatIfOptimizer::EntryChecksum(uint64_t query_fp, uint64_t config_fp,
                                        uint64_t epoch_fp, double cost) {
  return common::HashCombine(
      common::HashCombine(common::HashCombine(query_fp, config_fp), epoch_fp),
      std::bit_cast<uint64_t>(cost));
}

const QueryShape* WhatIfOptimizer::ResolveShape(const StatsEpoch& epoch,
                                                uint64_t query_fp,
                                                const sql::Query& q) const {
  // Shapes bake in statistics-derived selectivities and cardinalities, so
  // the cache key carries the stats epoch: a distribution shift recompiles
  // rather than reuses.
  const uint64_t shape_key = common::HashCombine(query_fp, epoch.fingerprint);
  ShapeShard& shard = shape_shards_[shape_key >> 60];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(shape_key);
    if (it != shard.map.end()) {
      // The stored query and epoch are compared in full: a 64-bit
      // fingerprint collision must never cost one query with another
      // query's — or another distribution's — shape.
      if (it->second.epoch_fp == epoch.fingerprint &&
          it->second.shape->query == q) {
        return it->second.shape.get();
      }
      return nullptr;
    }
  }
  // First sight of this (epoch, query): precompile outside the shard lock (a
  // shape build is much heavier than a map lookup), then publish. A racing
  // thread computing the same shape loses the try_emplace and adopts the
  // winner's entry; the miss is counted once, on insertion, so the count
  // stays deterministic across thread counts.
  auto shape = std::make_unique<QueryShape>(  // NOLINT(no-heap-on-hot-path): once per distinct query
      epoch.model.ComputeShape(q));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(
      shape_key, ShapeEntry{epoch.fingerprint, std::move(shape)});
  if (inserted) Metrics().shape_misses->Add();
  if (it->second.epoch_fp == epoch.fingerprint && it->second.shape->query == q) {
    return it->second.shape.get();
  }
  return nullptr;
}

common::Status WhatIfOptimizer::CachedCostStatus(
    const StatsEpoch& epoch, const sql::Query& q, uint64_t query_fp,
    const QueryShape* shape, uint64_t config_fp, const IndexConfig& config,
    const common::EvalContext& ctx, double* out) const {
  TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  Metrics().calls->Add();
  const uint64_t pair_key = common::HashCombine(query_fp, config_fp);
  // Fault draws key on the logical work item + the context's salt, so the
  // same (query, config) pair draws identically on every run, thread count,
  // and stats epoch (drift must not reshuffle fault fates), while retry
  // attempts (which re-salt) redraw.
  const uint64_t draw_key = common::HashCombine(pair_key, ctx.fault_salt);
  // The memo key additionally carries the stats epoch: an estimate computed
  // under one data distribution must never answer a probe made under
  // another (the ClearCache() staleness hazard the drift overlay exposed).
  const uint64_t key = common::HashCombine(pair_key, epoch.fingerprint);
  if (common::FaultShouldFire(common::FaultSite::kWhatIfTimeout, draw_key)) {
    obs::CountFaultFire(
        common::FaultSiteName(common::FaultSite::kWhatIfTimeout));
    return common::Status::DeadlineExceeded(
        "injected fault: engine.whatif.timeout");
  }
  CacheShard& shard = shards_[key >> 60];  // high bits: 64 - log2(16)
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second.query_fp == query_fp &&
          it->second.config_fp == config_fp &&
          it->second.epoch_fp == epoch.fingerprint) {
        if (it->second.checksum == EntryChecksum(query_fp, config_fp,
                                                 epoch.fingerprint,
                                                 it->second.cost)) {
          *out = it->second.cost;
          return common::Status::Ok();
        }
        // Corrupted entry (cache.shard.poison): fall through, recompute,
        // and repair below. The caller always gets the true cost.
        num_integrity_recoveries_.fetch_add(1, std::memory_order_relaxed);
        Metrics().poison_heals->Add();
      } else {
        // 64-bit collision: fall through and recompute; the recomputed pair
        // takes the slot (collisions are ~never, correctness is what
        // matters — neither pair is ever answered from the other's entry).
        num_collisions_.fetch_add(1, std::memory_order_relaxed);
        Metrics().collisions->Add();
      }
    }
  }
  // A miss costs the configuration against the precompiled shape (resolved
  // on demand for unbatched calls, so cache hits never touch the shape
  // cache). The shape-free fallback only runs on a verified fingerprint
  // collision.
  if (shape == nullptr) shape = ResolveShape(epoch, query_fp, q);
  double cost = shape != nullptr ? epoch.model.QueryCost(*shape, config)
                                 : epoch.model.QueryCost(q, config);
  if (common::FaultShouldFire(common::FaultSite::kWhatIfCostError, draw_key)) {
    obs::CountFaultFire(
        common::FaultSiteName(common::FaultSite::kWhatIfCostError));
    cost = std::numeric_limits<double>::quiet_NaN();
  }
  // Validate before caching or returning: a mis-costed plan must surface as
  // an error, never as a silently wrong (or poisonous NaN) estimate.
  if (!std::isfinite(cost) || cost < 0.0) {
    return common::Status::Internal("what-if cost model produced an invalid "
                                    "cost estimate");
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    CacheEntry entry{query_fp, config_fp, epoch.fingerprint, cost,
                     EntryChecksum(query_fp, config_fp, epoch.fingerprint,
                                   cost)};
    if (common::FaultShouldFire(common::FaultSite::kCacheShardPoison,
                                draw_key)) {
      // Corrupt the stored cost but not the checksum: the next hit detects
      // the mismatch and self-heals instead of serving the bad value.
      // Fire count is best-effort: racing threads may both reach here.
      obs::CountFaultFire(
          common::FaultSiteName(common::FaultSite::kCacheShardPoison),
          /*deterministic=*/false);
      entry.cost = -(cost + 1.0);
    }
    auto [it, inserted] = shard.map.insert_or_assign(key, entry);
    (void)it;
    // Count the miss only on actual insertion so two threads racing to fill
    // the same entry (both computing the identical value) report one miss.
    if (inserted) {
      num_misses_.fetch_add(1, std::memory_order_relaxed);
      Metrics().misses->Add();
    }
  }
  *out = cost;
  return common::Status::Ok();
}

void WhatIfOptimizer::RecordBatchMetrics(
    size_t items, const std::vector<uint64_t>& config_fps,
    std::vector<uint64_t>* sort_scratch, obs::TraceSpan* span) {
  // Duplicate configurations in a candidate sweep measure how much work the
  // per-entry memo absorbs within a single batch.
  std::vector<uint64_t>& fps = *sort_scratch;
  fps.assign(config_fps.begin(), config_fps.end());
  std::sort(fps.begin(), fps.end());
  size_t dups = 0;
  for (size_t i = 1; i < fps.size(); ++i) {
    if (fps[i] == fps[i - 1]) ++dups;
  }
  const WhatIfMetrics& m = Metrics();
  m.batches->Add();
  m.batch_items->Record(static_cast<int64_t>(items));
  if (dups > 0) m.dup_configs->Add(static_cast<int64_t>(dups));
  span->AddArg("items", static_cast<int64_t>(items));
  span->AddArg("configs", static_cast<int64_t>(config_fps.size()));
  if (dups > 0) span->AddArg("dup_configs", static_cast<int64_t>(dups));
}

common::Status WhatIfOptimizer::BatchCostCore(
    BatchScratch& sc, size_t nq, const IndexConfig* configs, size_t nc,
    bool weighted, BatchKind kind, const common::EvalContext& ctx,
    double* totals) const {
  // One epoch resolution per batch: every item of this batch costs against
  // ctx.snapshot's statistics, whatever other snapshots concurrent callers
  // carry (the hammer tests assert exactly this all-or-nothing property).
  const std::shared_ptr<const StatsEpoch> epoch = epochs_.Resolve(ctx.snapshot);
  const size_t items = nq * nc;
  // Fingerprint every query and configuration exactly once per batch (the
  // pre-batched path refingerprinted the query on every item).
  sc.query_fps.resize(nq);
  for (size_t i = 0; i < nq; ++i) {
    sc.query_fps[i] = sql::Fingerprint(*sc.query_ptrs[i]);
  }
  sc.config_fps.resize(nc);
  for (size_t c = 0; c < nc; ++c) sc.config_fps[c] = configs[c].Fingerprint();

  // Span keys are derived exactly as the per-entry-point code always did,
  // so golden trace digests are unchanged.
  uint64_t span_key = 0;
  switch (kind) {
    case BatchKind::kWorkloadCost:
      span_key = common::HashCombine(sc.config_fps[0], nq);
      break;
    case BatchKind::kWorkloadCosts: {
      uint64_t k = nq;
      for (uint64_t fp : sc.config_fps) k = common::HashCombine(k, fp);
      span_key = k;
      break;
    }
    case BatchKind::kQueryCosts: {
      uint64_t k = nc;
      for (uint64_t fp : sc.config_fps) k = common::HashCombine(k, fp);
      span_key = common::HashCombine(sc.query_fps[0], k);
      break;
    }
  }
  obs::TraceSpan span(ctx, "whatif.batch", span_key);
  RecordBatchMetrics(items, sc.config_fps, &sc.sorted_config_fps, &span);

  // Resolve each query's precompiled shape once per batch, not per item.
  // A nullptr entry (verified fingerprint collision) degrades that query to
  // shape-free costing.
  sc.shapes.resize(nq);
  for (size_t i = 0; i < nq; ++i) {
    sc.shapes[i] = ResolveShape(*epoch, sc.query_fps[i], *sc.query_ptrs[i]);
  }

  // Collapse identical (query_fp, config_fp) items: only the first
  // occurrence (the "primary") is dispatched; duplicates copy its result at
  // fold time. Candidate sweeps routinely repeat configurations, and the
  // memo cache would serve the duplicates anyway — deduplicating first
  // avoids even the cache lookups and keeps the parallel loop dense.
  sc.uniques.clear();
  sc.item_to_unique.resize(items);
  // Re-arm the flat probe table: grow to the next power of two holding the
  // batch at <= 0.5 load (a one-time allocation per high-water mark), then
  // blanket-fill the value lane — no rehash, no node allocations.
  size_t table = 16;
  while (table < items * 2) table <<= 1;
  if (sc.slot_keys.size() < table) {
    sc.slot_keys.resize(table);
    sc.slot_vals.resize(table);
  }
  const size_t mask = sc.slot_keys.size() - 1;
  std::fill(sc.slot_vals.begin(), sc.slot_vals.end(),
            BatchScratch::kEmptySlot);
  for (size_t c = 0; c < nc; ++c) {
    for (size_t i = 0; i < nq; ++i) {
      const uint64_t pair_key =
          common::HashCombine(sc.query_fps[i], sc.config_fps[c]);
      const uint32_t next_slot = static_cast<uint32_t>(sc.uniques.size());
      uint32_t slot = next_slot;
      bool primary = true;
      for (size_t pos = pair_key & mask;; pos = (pos + 1) & mask) {
        if (sc.slot_vals[pos] == BatchScratch::kEmptySlot) {
          sc.slot_keys[pos] = pair_key;
          sc.slot_vals[pos] = next_slot;
          break;
        }
        if (sc.slot_keys[pos] != pair_key) continue;
        const BatchScratch::UniquePair& u = sc.uniques[sc.slot_vals[pos]];
        if (sc.query_fps[u.qi] == sc.query_fps[i] &&
            sc.config_fps[u.ci] == sc.config_fps[c]) {
          slot = sc.slot_vals[pos];
          primary = false;
        }
        // else: HashCombine collision between two *distinct* pairs — give
        // this item its own unregistered slot (it just loses dedup against
        // later twins).
        break;
      }
      if (primary) {
        sc.uniques.push_back(
            {static_cast<uint32_t>(i), static_cast<uint32_t>(c)});
      }
      sc.item_to_unique[c * nq + i] =
          primary ? (slot | BatchScratch::kPrimaryBit) : slot;
    }
  }
  const size_t dup_pairs = items - sc.uniques.size();
  if (dup_pairs > 0) {
    Metrics().dup_pairs->Add(static_cast<int64_t>(dup_pairs));
  }

  // Evaluate the unique set in parallel, in cache-friendly grains, writing
  // into pre-sized slots (neighbouring slots are claimed by one thread, so
  // output writes do not false-share across threads).
  sc.unique_costs.assign(sc.uniques.size(), 0.0);
  sc.unique_statuses.assign(
      sc.uniques.size(),
      common::Status::Cancelled("skipped: evaluation cancelled"));
  common::ThreadPool& pool =
      ctx.pool != nullptr ? *ctx.pool : common::GlobalPool();
  const size_t grain =
      common::ThreadPool::GrainFor(sc.uniques.size(), pool.num_threads());
  pool.ParallelForGrained(
      sc.uniques.size(), grain,
      [&](size_t u) {
        const BatchScratch::UniquePair p = sc.uniques[u];
        sc.unique_statuses[u] = CachedCostStatus(
            *epoch, *sc.query_ptrs[p.qi], sc.query_fps[p.qi], sc.shapes[p.qi],
            sc.config_fps[p.ci], configs[p.ci], ctx, &sc.unique_costs[u]);
      },
      ctx.cancel);

  // Serial fold in input order: bit-identical totals and first-error
  // selection for any thread count.
  for (size_t c = 0; c < nc; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < nq; ++i) {
      const uint32_t entry = sc.item_to_unique[c * nq + i];
      const uint32_t u = entry & ~BatchScratch::kPrimaryBit;
      if ((entry & BatchScratch::kPrimaryBit) == 0) {
        // Deduplicated item: keep the pre-dedup accounting — one step
        // charged, one call counted — and inherit the primary's Status
        // (fault draws key on the (query_fp, config_fp) pair, so this item
        // would have drawn the same fate).
        TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
        num_calls_.fetch_add(1, std::memory_order_relaxed);
        Metrics().calls->Add();
      }
      TRAP_RETURN_IF_ERROR(sc.unique_statuses[u]);
      total += (weighted ? sc.weights[i] : 1.0) * sc.unique_costs[u];
    }
    totals[c] = total;
  }
  return common::Status::Ok();
}

common::StatusOr<double> WhatIfOptimizer::TryQueryCost(
    const sql::Query& q, const IndexConfig& config,
    const common::EvalContext& ctx) const {
  const std::shared_ptr<const StatsEpoch> epoch = epochs_.Resolve(ctx.snapshot);
  double cost = 0.0;
  TRAP_RETURN_IF_ERROR(CachedCostStatus(*epoch, q, sql::Fingerprint(q),
                                        /*shape=*/nullptr, config.Fingerprint(),
                                        config, ctx, &cost));
  return cost;
}

std::vector<double> WhatIfOptimizer::QueryCosts(
    const sql::Query& q, const std::vector<IndexConfig>& configs,
    const common::EvalContext& ctx) const {
  common::StatusOr<std::vector<double>> costs = TryQueryCosts(q, configs, ctx);
  if (costs.ok()) return *std::move(costs);
  return std::vector<double>(configs.size(), kInfiniteCost);
}

common::StatusOr<std::vector<double>> WhatIfOptimizer::TryQueryCosts(
    const sql::Query& q, const std::vector<IndexConfig>& configs,
    const common::EvalContext& ctx) const {
  ScratchLease scratch;
  BatchScratch& sc = *scratch;
  sc.query_ptrs.assign(1, &q);
  std::vector<double> costs(configs.size(), 0.0);
  TRAP_RETURN_IF_ERROR(BatchCostCore(sc, 1, configs.data(), configs.size(),
                                     /*weighted=*/false,
                                     BatchKind::kQueryCosts, ctx,
                                     costs.data()));
  return costs;
}

std::unique_ptr<PlanNode> WhatIfOptimizer::Plan(
    const sql::Query& q, const IndexConfig& config,
    const common::EvalContext& ctx) const {
  return epochs_.Resolve(ctx.snapshot)->model.Plan(q, config);
}

size_t WhatIfOptimizer::cache_size() const {
  size_t total = 0;
  for (const CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t WhatIfOptimizer::shape_cache_size() const {
  size_t total = 0;
  for (const ShapeShard& shard : shape_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void WhatIfOptimizer::ClearCache() {
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace trap::engine
