#ifndef TRAP_WORKLOAD_WORKLOAD_H_
#define TRAP_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "sql/query.h"

namespace trap::workload {

// A query with an associated weight e (the paper assigns unit frequencies,
// Definition 3.1 / Section V-A).
struct WorkloadQuery {
  sql::Query query;
  double weight = 1.0;
};

// A workload W = {(q, e)}.
struct Workload {
  std::vector<WorkloadQuery> queries;

  int size() const { return static_cast<int>(queries.size()); }
  bool empty() const { return queries.empty(); }
};

// The weighted estimated cost c(W, d, I) is WhatIfOptimizer::WorkloadCost
// (engine/what_if.h) -- the single definition of workload costing -- and
// the "actual runtime" counterpart is engine::ActualCost
// (engine/true_cost.h). Both take the workload as a template parameter:
// workload/ sits below engine/ in the layering DAG (tools/lint/layers.txt)
// and must not include engine headers.

}  // namespace trap::workload

#endif  // TRAP_WORKLOAD_WORKLOAD_H_
