#ifndef TRAP_COMMON_THREAD_POOL_H_
#define TRAP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"

namespace trap::common {

// Fixed-size thread pool driving data-parallel loops. There is no work
// stealing and no futures: the single primitive is a parallel-for, which
// partitions [0, n) across the pool's workers plus the calling thread via a
// shared atomic cursor and blocks until every iteration has run. The cursor
// is claimed in *grains* of consecutive iterations, so neighbouring items
// (which usually write neighbouring output slots) stay on one thread --
// cache-friendly and far fewer atomic operations than per-item claims.
//
// Threading contract:
//   * The loop body must be safe to invoke concurrently from multiple
//     threads; iterations may run in any order.
//   * Results must not depend on iteration order. Callers that reduce over
//     the results write into pre-sized slots and fold them serially
//     afterwards, which keeps outputs bit-identical across thread counts.
//   * Nested use is rejected: a parallel-for issued from inside another
//     parallel-for (worker or participating caller) does not re-enter the
//     pool — it runs its whole loop serially on the current thread, since
//     re-entry could deadlock on the pool's single in-flight batch.
//   * The first exception thrown by the body is captured and rethrown on
//     the calling thread once the loop has drained; remaining iterations
//     still run (the library itself is exception-free, but tests and user
//     callbacks may throw).
//
// Steady-state dispatch performs no heap allocation: the batch control
// block is a reusable member (generation-counted, so workers from a
// previous batch can never claim into the next one), and the templated
// ParallelForGrained erases the loop body to a plain function pointer plus
// a stack context instead of wrapping it in a std::function.
class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers; the caller participates in every
  // batch, so `num_threads == 1` means fully serial execution.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0), ..., fn(n-1) across the pool. Blocks until done. Zero items
  // is a no-op. Grain is chosen automatically (GrainFor).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Cancel-aware variant: once `cancel` reports cancelled or expired, the
  // remaining unclaimed iterations fast-drain -- they are claimed but fn is
  // not invoked for them. Callers must pre-fill per-item result slots with a
  // kCancelled Status (or equivalent) so skipped items stay accounted for.
  // `cancel == nullptr` behaves exactly like the plain overload.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancelToken* cancel);

  // The hot-path primitive: runs body(0), ..., body(n-1), claiming `grain`
  // consecutive iterations per cursor fetch. `body` is any callable taking
  // a size_t; it is invoked through a function pointer, never copied, and
  // never heap-allocated. When the whole loop fits in one grain (n <=
  // grain), when the pool has no workers, or when called from inside
  // another batch, the loop runs inline on the calling thread without
  // touching the pool's locks or waking workers.
  template <typename Body>
  void ParallelForGrained(size_t n, size_t grain, const Body& body,
                          const CancelToken* cancel = nullptr) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    struct Ctx {
      const Body* body;
      const CancelToken* cancel;
    };
    Ctx ctx{&body, cancel};
    ChunkFn run = [](void* raw, size_t begin, size_t end,
                     ErrorSlot* err) noexcept {
      Ctx& c = *static_cast<Ctx*>(raw);
      for (size_t i = begin; i < end; ++i) {
        if (c.cancel != nullptr &&
            (c.cancel->cancelled() || c.cancel->expired())) {
          continue;  // fast-drain: claimed but skipped, slots stay pre-filled
        }
        try {
          (*c.body)(i);
        } catch (...) {
          err->Capture();
        }
      }
    };
    Dispatch(n, grain, run, &ctx);
  }

  // Suggested grain for a loop of `n` items on `lanes` execution lanes:
  // enough chunks that lanes stay busy (~4 per lane), large enough that a
  // chunk's output slots span whole cache lines. Always in [1, 64].
  static size_t GrainFor(size_t n, int lanes);

  // True while the current thread is executing iterations of some batch
  // (either as a pool worker or as the submitting caller).
  static bool InParallelLoop();

 private:
  // First-exception slot; the mutex is only touched when a body throws.
  struct ErrorSlot {
    std::mutex mu;
    std::exception_ptr error;
    void Capture() noexcept;
    void Rethrow();
  };

  // Type-erased chunk runner: invokes the loop body for [begin, end),
  // capturing any exception into `err`. Must not throw.
  using ChunkFn = void (*)(void* ctx, size_t begin, size_t end,
                           ErrorSlot* err) noexcept;

  // Reusable control block of the (single) in-flight batch. The atomics sit
  // on their own cache lines so cursor claims do not false-share with the
  // read-only descriptor fields or with each other.
  struct Batch {
    size_t n = 0;
    size_t grain = 1;
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    alignas(64) std::atomic<size_t> next{0};       // next unclaimed iteration
    alignas(64) std::atomic<size_t> remaining{0};  // iterations not finished
    ErrorSlot error;
  };

  void Dispatch(size_t n, size_t grain, ChunkFn fn, void* ctx);
  void RunBatch(Batch& batch);
  void WorkerLoop(const std::stop_token& stop);

  std::mutex mu_;  // guards gen_, active_, done_, participants_
  std::condition_variable_any cv_;   // workers: a new generation was armed
  std::condition_variable done_cv_;  // caller: done && participants_ == 0
  Batch batch_;                      // reusable; valid while active_
  std::uint64_t gen_ = 0;            // bumped per batch; workers track it
  bool active_ = false;
  bool done_ = false;
  int participants_ = 0;  // workers currently inside RunBatch
  std::mutex submit_mu_;  // serializes external submitters
  std::vector<std::jthread> workers_;
};

// Process-wide pool, created on first use. Sized by the TRAP_THREADS
// environment variable when set (clamped to [1, 256]); otherwise by
// std::thread::hardware_concurrency().
ThreadPool& GlobalPool();

// Convenience: GlobalPool().ParallelFor(n, fn).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const CancelToken* cancel);

}  // namespace trap::common

#endif  // TRAP_COMMON_THREAD_POOL_H_
