# Empty compiler generated dependencies file for exploratory_analyst.
# This may be replaced when dependencies are built.
