#ifndef TRAP_TRAP_PERTURBER_H_
#define TRAP_TRAP_PERTURBER_H_

#include <memory>
#include <string>

#include "trap/training.h"

namespace trap::trap {

// The four workload generation methods compared in Section V-B, plus the
// transformer variants of Fig. 7 / Table IV.
enum class GenerationMethod {
  kRandom,       // random tree-legal perturbations (5x attempts allowed)
  kGru,          // decoder-only GRU, RL only
  kSeq2Seq,      // Bi-GRU encoder + GRU decoder, no attention, RL only
  kTrap,         // full TRAP: attention + pretraining + learned utility
  kTransformer,  // transformer-encoder variant (PLM stand-in), RL only
};

const char* MethodName(GenerationMethod m);

// Transformer configurations standing in for the pre-trained language models
// of Table IV ("Bert", "Bart", "CodeBert", "StarEncoder"); sizes scale with
// the original models' relative parameter counts. An unknown model name is
// a caller error reported as kInvalidArgument, not an abort.
common::StatusOr<AgentOptions> PlmAgentOptions(const std::string& plm_name,
                                               uint64_t seed);

struct GeneratorConfig {
  GenerationMethod method = GenerationMethod::kTrap;
  PerturbationConstraint constraint = PerturbationConstraint::kSharedTable;
  int epsilon = 5;
  AgentOptions agent;        // dims/encoder filled in by the method unless
                             // method == kTransformer (caller supplies)
  PretrainOptions pretrain;  // used by kTrap
  bool pretrain_enabled = true;  // Fig. 8(b): kTrap without phase 1
  RlOptions rl;
  int random_attempts = 5;   // Random generates 5x more queries (Sec. V-B)
  int model_attempts = 3;    // trained methods: greedy + (k-1) sampled
                             // candidates, scored by estimated IUDR
  uint64_t seed = 0xace;
};

// End-to-end adversarial workload generator: construct, Fit against a victim
// index advisor, then Generate perturbed workloads. All methods share the
// Constraint-Aware Reference Tree, so every produced query is valid and
// within the edit budget.
class AdversarialWorkloadGenerator {
 public:
  AdversarialWorkloadGenerator(const sql::Vocabulary& vocab,
                               GeneratorConfig config);
  ~AdversarialWorkloadGenerator();

  // Trains the generator against `victim` (no-op policy training for
  // kRandom, which still uses the utility model to pick its best attempt).
  // `pretrain_pool` feeds phase-1; `training` feeds the RL phase.
  void Fit(advisor::IndexAdvisor* victim, advisor::IndexAdvisor* victim_baseline,
           const engine::WhatIfOptimizer* optimizer,
           const gbdt::LearnedUtilityModel* utility,
           const std::vector<sql::Query>& pretrain_pool,
           const std::vector<workload::Workload>& training,
           advisor::TuningConstraint tuning);

  // Produces the perturbation-based adversarial workload W' for W.
  // Degrades any error to returning `w` unperturbed (never a crash, never
  // an invalid workload); use TryGenerate to observe failures.
  workload::Workload Generate(const workload::Workload& w);

  // Fallible generation under `ctx`. Queries for which the
  // perturber.invalid_tree fault fires degrade individually to their
  // unperturbed originals (counted by num_degraded_queries()); calling
  // before Fit is kInvalidArgument.
  common::StatusOr<workload::Workload> TryGenerate(
      const workload::Workload& w, const common::EvalContext& ctx = {});

  // Queries degraded to their originals because the perturbed tree was
  // rejected (perturber.invalid_tree), since construction.
  int64_t num_degraded_queries() const { return num_degraded_queries_; }

  // Introspection for the benches.
  int64_t NumParameters() const;
  const RlTrace& rl_trace() const { return rl_trace_; }
  const std::vector<double>& pretrain_trace() const { return pretrain_trace_; }
  TrapAgent* agent();  // nullptr for kRandom

  const GeneratorConfig& config() const { return config_; }

 private:
  common::StatusOr<workload::Workload> TryRandomPerturb(
      const workload::Workload& w, const common::EvalContext& ctx);

  const sql::Vocabulary* vocab_;
  GeneratorConfig config_;
  common::Rng rng_;
  std::unique_ptr<TrapAgent> agent_;
  std::unique_ptr<RlTrainer> trainer_;
  RlTrace rl_trace_;
  std::vector<double> pretrain_trace_;
  int64_t num_degraded_queries_ = 0;
};

}  // namespace trap::trap

#endif  // TRAP_TRAP_PERTURBER_H_
