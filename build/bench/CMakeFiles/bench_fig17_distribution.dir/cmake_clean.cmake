file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_distribution.dir/bench_fig17_distribution.cc.o"
  "CMakeFiles/bench_fig17_distribution.dir/bench_fig17_distribution.cc.o.d"
  "bench_fig17_distribution"
  "bench_fig17_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
