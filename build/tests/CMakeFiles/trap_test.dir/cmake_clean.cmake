file(REMOVE_RECURSE
  "CMakeFiles/trap_test.dir/trap_test.cc.o"
  "CMakeFiles/trap_test.dir/trap_test.cc.o.d"
  "trap_test"
  "trap_test.pdb"
  "trap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
