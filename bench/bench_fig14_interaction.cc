// Fig. 14: IUDR vs. consideration of index interaction. Each heuristic
// advisor is run in two modes: candidate benefits re-evaluated under the
// currently selected configuration (w/ interaction) vs. computed once with
// each index built alone (w/o interaction). TRAP generates the workloads.

#include <cstdio>

#include "advisor/registry.h"
#include "harness.h"

namespace tc = ::trap::trap;
using namespace trap;

int main() {
  bench::BenchEnv env(catalog::MakeTpcH(0.15), 0xfe1);
  advisor::TuningConstraint constraint = env.StorageConstraint();

  const char* specs[] = {"Extend", "AutoAdmin", "Relaxation", "DTA"};

  bench::PrintHeader("Fig. 14 — IUDR vs. index interaction (TRAP workloads)");
  std::printf("%-12s %18s %18s\n", "advisor", "w/ interaction",
              "w/o interaction");
  for (const char* name : specs) {
    std::printf("%-12s", name);
    for (bool interaction : {true, false}) {
      advisor::RegistryOptions options;
      options.heuristic.consider_interaction = interaction;
      std::unique_ptr<advisor::IndexAdvisor> victim =
          *advisor::MakeAdvisor(name, env.optimizer, options);
      tc::GeneratorConfig config = bench::BenchGeneratorConfig(
          tc::GenerationMethod::kTrap,
          tc::PerturbationConstraint::kColumnConsistent, 5,
          0xfe1 ^ std::hash<std::string>{}(name) ^ (interaction ? 1 : 2));
      bench::AssessmentResult r = bench::AssessRobustness(
          env, victim.get(), nullptr, config, constraint, 0.1);
      std::printf(" %18.4f", r.mean_iudr);
    }
    std::printf("\n");
  }
  std::printf("\nShape: ignoring index interaction (benefits computed per "
              "index in isolation) makes every heuristic less robust.\n");
  return 0;
}
