// Fig. 15: IUDR vs. the usage of multi-column indexes. Heuristic advisors
// run with single-column-only candidates vs. with multi-column candidates;
// TRAP generates the adversarial workloads.

#include <cstdio>

#include "advisor/registry.h"
#include "harness.h"

namespace tc = ::trap::trap;
using namespace trap;

int main() {
  bench::BenchEnv env(catalog::MakeTpcH(0.15), 0xff1);
  advisor::TuningConstraint constraint = env.StorageConstraint();

  const char* specs[] = {"Extend", "AutoAdmin", "Drop", "DTA"};

  bench::PrintHeader("Fig. 15 — IUDR vs. multi-column index usage (TRAP workloads)");
  std::printf("%-12s %16s %16s\n", "advisor", "single-column",
              "w/ multi-column");
  for (const char* name : specs) {
    std::printf("%-12s", name);
    for (bool multi : {false, true}) {
      advisor::RegistryOptions options;
      options.heuristic.multi_column = multi;
      options.drop_single_column = false;  // the swept axis applies to Drop
      std::unique_ptr<advisor::IndexAdvisor> victim =
          *advisor::MakeAdvisor(name, env.optimizer, options);
      tc::GeneratorConfig config = bench::BenchGeneratorConfig(
          tc::GenerationMethod::kTrap,
          tc::PerturbationConstraint::kSharedTable, 5,
          0xff1 ^ std::hash<std::string>{}(name) ^ (multi ? 1 : 2));
      bench::AssessmentResult r = bench::AssessRobustness(
          env, victim.get(), nullptr, config, constraint, 0.1);
      std::printf(" %16.4f", r.mean_iudr);
    }
    std::printf("\n");
  }
  std::printf("\nShape: advisors restricted to single-column candidates show "
              "a larger IUDR — multi-column (covering, multi-predicate) "
              "indexes absorb more of the perturbations.\n");
  return 0;
}
