#ifndef TRAP_ADVISOR_DQN_ADVISORS_H_
#define TRAP_ADVISOR_DQN_ADVISORS_H_

#include <memory>

#include "advisor/rl_common.h"

namespace trap::advisor {

// Shared knobs for the two DQN-based advisors.
struct DqnOptions {
  StateGranularity state = StateGranularity::kCoarse;
  bool multi_column = false;
  bool prune_candidates = true;   // Fig. 13 switch (DQN advisor)
  int max_actions = 48;
  int hidden = 64;
  double learning_rate = 1e-3;
  int episodes = 400;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  double gamma = 0.95;
  int replay_capacity = 4096;
  int batch_size = 32;
  int target_sync_interval = 200;  // steps between target-network syncs
  uint64_t seed = 0xd02;
};

// DRLindex [Sadri et al., IDEAS'20]: DQN over single-column index actions
// with a coarse-grained state (column occurrence counts), index-count
// constrained.
std::unique_ptr<LearningAdvisor> MakeDrlIndex(
    const engine::WhatIfOptimizer& optimizer, DqnOptions options = {});

// DQN advisor [Lan et al., CIKM'20]: DQN with heuristic rule-based candidate
// pruning and single- and multi-column candidates.
std::unique_ptr<LearningAdvisor> MakeDqnAdvisor(
    const engine::WhatIfOptimizer& optimizer, DqnOptions options = {});

// Applies the advisor-specific defaults used in the paper's Table III.
DqnOptions DrlIndexDefaults();
DqnOptions DqnAdvisorDefaults();

}  // namespace trap::advisor

#endif  // TRAP_ADVISOR_DQN_ADVISORS_H_
