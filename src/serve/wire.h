#ifndef TRAP_SERVE_WIRE_H_
#define TRAP_SERVE_WIRE_H_

#include "catalog/stats_overlay.h"
#include "common/json.h"

namespace trap::serve {

// Catalog-overlay codec for the session API's snapshot_stats method: a
// client publishes a new stats epoch by shipping the overlay content, the
// server rebuilds it and hands it to catalog::SnapshotManager::Publish.
// Round-trips preserve the overlay fingerprint bit-for-bit (doubles ride
// through %.17g), so the epoch a client computes locally matches the epoch
// the server publishes.
common::JsonValue EncodeStatsOverlay(const catalog::StatsOverlay& overlay);
common::StatusOr<catalog::StatsOverlay> DecodeStatsOverlay(
    const common::JsonValue& v);

}  // namespace trap::serve

#endif  // TRAP_SERVE_WIRE_H_
