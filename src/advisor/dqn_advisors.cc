#include "advisor/dqn_advisors.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "nn/adam.h"
#include "nn/layers.h"

namespace trap::advisor {
namespace {

struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  std::vector<bool> next_valid;
  bool done = false;
};

// Deep Q-learning over the index-selection episode with experience replay
// and a periodically synchronized target network.
class DqnAdvisorBase : public LearningAdvisor {
 public:
  DqnAdvisorBase(const engine::WhatIfOptimizer& optimizer, DqnOptions options,
                 std::string name)
      : optimizer_(&optimizer), options_(options), name_(std::move(name)),
        rng_(options.seed) {}

  std::string name() const override { return name_; }

  void Train(const std::vector<workload::Workload>& training,
             const TuningConstraint& constraint) override {
    TRAP_CHECK(!training.empty());
    actions_ = BuildActionSpace(training, optimizer_->schema(),
                                options_.multi_column,
                                options_.prune_candidates,
                                options_.max_actions);
    encoder_ = std::make_unique<StateEncoder>(options_.state, optimizer_,
                                              &actions_);
    int k = actions_.size();
    qnet_ = nn::Mlp(&store_, {encoder_->dim(), options_.hidden, k}, rng_);
    target_ = nn::Mlp(&target_store_, {encoder_->dim(), options_.hidden, k},
                      rng_);
    target_store_.CopyValuesFrom(store_);
    opt_ = std::make_unique<nn::Adam>(store_.parameters(),
                                      options_.learning_rate);
    opt_->set_max_grad_norm(5.0);

    IndexSelectionEnv env(optimizer_, &actions_);
    int64_t global_step = 0;
    for (int ep = 0; ep < options_.episodes; ++ep) {
      double eps = options_.epsilon_start +
                   (options_.epsilon_end - options_.epsilon_start) *
                       static_cast<double>(ep) /
                       std::max(1, options_.episodes - 1);
      const workload::Workload& w =
          training[static_cast<size_t>(rng_.UniformInt(
              0, static_cast<int64_t>(training.size()) - 1))];
      env.Reset(&w, constraint);
      while (!env.Done()) {
        std::vector<bool> valid = env.ValidActions(false);
        if (std::none_of(valid.begin(), valid.end(), [](bool b) { return b; })) {
          break;
        }
        std::vector<double> state = encoder_->Encode(w, env.built(), constraint);
        int a = rng_.Bernoulli(eps) ? RandomValid(valid)
                                    : GreedyAction(qnet_, state, valid);
        double r = env.Step(a);
        bool done = env.Done();
        std::vector<double> next_state =
            encoder_->Encode(w, env.built(), constraint);
        std::vector<bool> next_valid = env.ValidActions(false);
        replay_.push_back(Transition{std::move(state), a, r,
                                     std::move(next_state),
                                     std::move(next_valid), done});
        if (static_cast<int>(replay_.size()) > options_.replay_capacity) {
          replay_.pop_front();
        }
        if (static_cast<int>(replay_.size()) >= options_.batch_size) {
          LearnBatch();
        }
        if (++global_step % options_.target_sync_interval == 0) {
          target_store_.CopyValuesFrom(store_);
        }
      }
    }
    trained_ = true;
  }

  common::StatusOr<engine::IndexConfig> TryRecommend(
      const workload::Workload& w, const TuningConstraint& constraint,
      const common::EvalContext& ctx) override {
    if (!trained_) {
      return common::Status::InvalidArgument(name_ +
                                             ": Train must be called first");
    }
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    IndexSelectionEnv env(optimizer_, &actions_);
    // The frozen policy is probed under the caller's stats epoch: the
    // episode and the state encoding both carry ctx so drifted workloads
    // are costed against the snapshot they arrived with.
    env.Reset(&w, constraint, ctx);
    while (!env.Done()) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      std::vector<bool> valid = env.ValidActions(false);
      if (std::none_of(valid.begin(), valid.end(), [](bool b) { return b; })) {
        break;
      }
      std::vector<double> state =
          encoder_->Encode(w, env.built(), constraint, ctx);
      int a = GreedyAction(qnet_, state, valid);
      // Stop early when the best remaining Q-value predicts no improvement
      // (but always recommend at least one index).
      if (!env.built().empty() && BestQ(qnet_, state, valid) <= 0.0) break;
      env.Step(a);
    }
    return env.built();
  }

  const ActionSpace& action_space() const { return actions_; }

 private:
  int RandomValid(const std::vector<bool>& valid) {
    std::vector<int> ids;
    for (size_t i = 0; i < valid.size(); ++i) {
      if (valid[i]) ids.push_back(static_cast<int>(i));
    }
    return ids[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
  }

  nn::Matrix QValues(const nn::Mlp& net, const std::vector<double>& state) {
    nn::Graph g;
    return g.value(net.Forward(g, g.Input(nn::Matrix::RowVector(state))));
  }

  int GreedyAction(const nn::Mlp& net, const std::vector<double>& state,
                   const std::vector<bool>& valid) {
    nn::Matrix q = QValues(net, state);
    int best = -1;
    for (int j = 0; j < q.cols(); ++j) {
      if (!valid[static_cast<size_t>(j)]) continue;
      if (best < 0 || q.at(0, j) > q.at(0, best)) best = j;
    }
    TRAP_CHECK(best >= 0);
    return best;
  }

  double BestQ(const nn::Mlp& net, const std::vector<double>& state,
               const std::vector<bool>& valid) {
    nn::Matrix q = QValues(net, state);
    double best = -1e300;
    for (int j = 0; j < q.cols(); ++j) {
      if (valid[static_cast<size_t>(j)]) best = std::max(best, q.at(0, j));
    }
    return best;
  }

  void LearnBatch() {
    nn::Graph g;
    nn::Graph::VarId loss = g.Input(nn::Matrix(1, 1));
    for (int b = 0; b < options_.batch_size; ++b) {
      const Transition& t = replay_[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(replay_.size()) - 1))];
      double target = t.reward;
      if (!t.done) {
        double best_next = -1e300;
        bool any = false;
        nn::Matrix qn = QValues(target_, t.next_state);
        for (int j = 0; j < qn.cols(); ++j) {
          if (j < static_cast<int>(t.next_valid.size()) &&
              t.next_valid[static_cast<size_t>(j)]) {
            best_next = std::max(best_next, qn.at(0, j));
            any = true;
          }
        }
        if (any) target += options_.gamma * best_next;
      }
      nn::Graph::VarId q =
          qnet_.Forward(g, g.Input(nn::Matrix::RowVector(t.state)));
      nn::Graph::VarId qa = g.Pick(q, 0, t.action);
      nn::Matrix tm(1, 1);
      tm.at(0, 0) = target;
      nn::Graph::VarId err = g.Sub(qa, g.Input(tm));
      loss = g.Add(loss, g.Mul(err, err));
    }
    g.Backward(g.Scale(loss, 1.0 / options_.batch_size));
    opt_->Step();
  }

  const engine::WhatIfOptimizer* optimizer_;
  DqnOptions options_;
  std::string name_;
  common::Rng rng_;

  ActionSpace actions_;
  std::unique_ptr<StateEncoder> encoder_;
  nn::ParameterStore store_;
  nn::ParameterStore target_store_;
  nn::Mlp qnet_;
  nn::Mlp target_;
  std::unique_ptr<nn::Adam> opt_;
  std::deque<Transition> replay_;
  bool trained_ = false;
};

}  // namespace

DqnOptions DrlIndexDefaults() {
  DqnOptions o;
  o.state = StateGranularity::kCoarse;
  o.multi_column = false;   // DRLindex recommends single-column indexes
  o.prune_candidates = true;
  o.seed = 0xd71;
  return o;
}

DqnOptions DqnAdvisorDefaults() {
  DqnOptions o;
  o.state = StateGranularity::kCoarse;
  o.multi_column = true;    // rule-generated multi-column candidates
  o.prune_candidates = true;
  o.seed = 0xd92;
  return o;
}

std::unique_ptr<LearningAdvisor> MakeDrlIndex(
    const engine::WhatIfOptimizer& optimizer, DqnOptions options) {
  return std::make_unique<DqnAdvisorBase>(optimizer, options, "DRLindex");
}

std::unique_ptr<LearningAdvisor> MakeDqnAdvisor(
    const engine::WhatIfOptimizer& optimizer, DqnOptions options) {
  return std::make_unique<DqnAdvisorBase>(optimizer, options, "DQN");
}

}  // namespace trap::advisor
