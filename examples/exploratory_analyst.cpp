// Exploratory analysis drift: a sales analyst keeps refining the same
// queries — new payload columns, extra filter predicates (the paper's
// Shared-Table scenario, JOB/CEB-style). The example contrasts how a
// heuristic advisor (Extend) and a search-based one (MCTS) hold up when TRAP
// steers the exploration adversarially.

#include <cstdio>

#include "advisor/evaluation.h"
#include "advisor/registry.h"
#include "catalog/datasets.h"
#include "trap/perturber.h"
#include "workload/generator.h"

int main() {
  using namespace trap;
  namespace trapcore = ::trap::trap;

  catalog::Schema schema = catalog::MakeTransaction(0.1);
  sql::Vocabulary vocab(schema, 8);
  engine::WhatIfOptimizer optimizer(schema);
  engine::TrueCostModel truth(schema);
  advisor::TuningConstraint constraint =
      advisor::TuningConstraint::IndexCount(4, schema.DataSizeBytes() / 2);

  workload::GeneratorOptions gopt;
  gopt.max_tables = 3;
  workload::QueryGenerator gen(vocab, gopt, 19);
  std::vector<sql::Query> pool = gen.GeneratePool(60);
  common::Rng rng(23);
  std::vector<workload::Workload> training;
  for (int i = 0; i < 3; ++i) {
    training.push_back(workload::SampleWorkload(pool, 4, rng));
  }
  workload::Workload analyst_session = workload::SampleWorkload(pool, 5, rng);

  gbdt::LearnedUtilityModel utility(optimizer, truth);
  utility.Train(pool, {engine::IndexConfig()});

  advisor::RobustnessEvaluator evaluator(optimizer, truth);
  struct VictimSpec {
    std::unique_ptr<advisor::IndexAdvisor> advisor;
  };
  std::vector<VictimSpec> victims;
  victims.push_back(VictimSpec{*advisor::MakeAdvisor("Extend", optimizer)});
  victims.push_back(VictimSpec{*advisor::MakeAdvisor("MCTS", optimizer)});

  std::printf("banking schema (%d tables / %d columns), Shared-Table drift\n\n",
              schema.num_tables(), schema.num_columns());
  std::printf("%-10s %10s %10s %8s\n", "advisor", "u(W)", "u(W')", "IUDR");
  for (VictimSpec& v : victims) {
    double u = evaluator.IndexUtility(*v.advisor, nullptr, analyst_session,
                                      constraint);
    trapcore::GeneratorConfig config;
    config.method = trapcore::GenerationMethod::kTrap;
    config.constraint = trapcore::PerturbationConstraint::kSharedTable;
    config.epsilon = 6;
    config.agent.embed_dim = 32;
    config.agent.hidden_dim = 32;
    config.pretrain.num_pairs = 120;
    config.pretrain.epochs = 2;
    config.rl.epochs = 4;
    config.rl.workloads_per_epoch = 2;
    config.rl.theta = 0.02;
    trapcore::AdversarialWorkloadGenerator generator(vocab, config);
    generator.Fit(v.advisor.get(), nullptr, &optimizer, &utility, pool,
                  training, constraint);
    workload::Workload drifted = generator.Generate(analyst_session);
    double u_prime =
        evaluator.IndexUtility(*v.advisor, nullptr, drifted, constraint);
    std::printf("%-10s %10.4f %10.4f %8.4f\n", v.advisor->name().c_str(), u,
                u_prime, advisor::RobustnessEvaluator::Iudr(u, u_prime));
  }
  std::printf("\nShared-Table perturbations may add payloads and predicates, "
              "the most flexible (and most damaging) drift class.\n");
  return 0;
}
