# Empty compiler generated dependencies file for trap_test.
# This may be replaced when dependencies are built.
