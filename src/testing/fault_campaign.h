#ifndef TRAP_TESTING_FAULT_CAMPAIGN_H_
#define TRAP_TESTING_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace trap::proptest {

// Sweep configuration for the fault-injection campaign (trap_fuzz
// --fault-campaign and the distributed trap_campaign): every injectable
// fault site is armed in turn at each probability, and a small
// advisor/perturber evaluation runs under a step budget. The campaign
// asserts that every injected fault is either retried through, degraded
// gracefully, self-healed, or surfaced as the matching Status code -- never
// a crash, and never a silent wrong answer (a succeeding case's
// recommendation must be bit-identical to the fault-free baseline).
struct FaultCampaignOptions {
  std::uint64_t seed = 1;
  std::string schema = "tpch";
  std::vector<double> probabilities = {1.0, 0.05};
  // Per-case evaluation step budget. Generous relative to a normal
  // recommend run, so only injected hangs exhaust it.
  std::uint64_t step_budget = 200000;
  int workloads = 2;  // cases per (site, probability, advisor)
};

// One cell of the sweep, identified by its position in the deterministic
// enumeration order. The spec is pure data -- it names the work without
// doing it -- so shards of [case_index) ranges can be handed to worker
// processes and the results merged order-independently.
struct CampaignCaseSpec {
  int case_index = 0;
  std::string site;
  double probability = 1.0;
  std::string advisor;  // registry advisor name, or "perturber"
  int workload_index = 0;
};

// The full case space for `opts`, in canonical order (case_index == vector
// position). Every runner -- single-process trap_fuzz, the in-process
// fallback, and remote workers -- enumerates the same list.
std::vector<CampaignCaseSpec> EnumerateCampaignCases(
    const FaultCampaignOptions& opts);

// The outcome of one executed cell.
struct CampaignCase {
  int case_index = -1;
  std::string site;
  double probability = 1.0;
  std::string advisor;  // advisor name, or "perturber"
  int workload_index = 0;
  common::StatusCode code = common::StatusCode::kOk;
  int attempts = 0;
  bool degraded = false;
  std::int64_t triggers = 0;   // registry hits observed during the case
  std::uint64_t config_fp = 0; // recommendation fingerprint (0 on failure)
  std::string note;            // accounting-violation description; "" = ok
};

// Per-case hash folded (by XOR) into the campaign digest. Covers only the
// deterministic fields (site, probability, advisor, workload, code,
// attempts, config_fp). Trigger counts are excluded: cache-level sites fire
// per *computation*, and how many computations a warm cache elides is
// scheduling-dependent. case_index is excluded as derivable from the rest.
std::uint64_t CampaignCaseHash(const CampaignCase& c);

// A contiguous [begin, end) slice of the enumeration order.
struct ShardSpec {
  int shard_id = 0;
  int begin = 0;
  int end = 0;
};

// Splits `num_cases` cases into at most `num_shards` contiguous shards that
// exactly partition [0, num_cases): sizes differ by at most one and no
// shard is empty (fewer shards are returned when cases run short). The
// shard-partition oracle fuzzes this invariant.
std::vector<ShardSpec> MakeShardPlan(int num_cases, int num_shards);

// Long-lived execution environment for campaign cases: the schema,
// vocabulary, deterministic workload set, and the fault-free baseline
// fingerprints every succeeding case must match. Building one is the
// expensive part (baselines run real recommendations); RunCase is cheap.
//
// RunCase arms the process-global fault registry for the case's
// (site, probability) and restores it on return, so cases within one
// process must run sequentially. This per-case arming is equivalent to the
// historical per-(site, p) arming: draws are pure functions of
// (seed, site, key), independent of registry hit counters.
class CampaignEnv {
 public:
  static common::StatusOr<CampaignEnv> Make(const FaultCampaignOptions& opts);
  ~CampaignEnv();
  CampaignEnv(CampaignEnv&&) noexcept;
  CampaignEnv& operator=(CampaignEnv&&) noexcept;

  const FaultCampaignOptions& options() const;
  CampaignCase RunCase(const CampaignCaseSpec& spec) const;

 private:
  struct Impl;
  explicit CampaignEnv(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

struct CampaignResult {
  std::vector<CampaignCase> cases;
  int violations = 0;
  // Order-independent digest: XOR of CampaignCaseHash over all cases;
  // compared across TRAP_THREADS settings and process topologies by
  // scripts/check.sh.
  std::uint64_t digest = 0;
  bool ok() const { return violations == 0; }
};

// Runs the whole sweep in this process. Progress and violations go to `log`
// when non-null. The global fault registry is restored to disarmed on
// return.
CampaignResult RunFaultCampaign(const FaultCampaignOptions& opts,
                                std::FILE* log);

// One-line log form of a case, shared by trap_fuzz and trap_campaign.
void LogCampaignCase(std::FILE* log, const CampaignCase& c);

}  // namespace trap::proptest

#endif  // TRAP_TESTING_FAULT_CAMPAIGN_H_
