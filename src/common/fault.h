#ifndef TRAP_COMMON_FAULT_H_
#define TRAP_COMMON_FAULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace trap::common {

// ---------------------------------------------------------------------------
// Fault-site registry
// ---------------------------------------------------------------------------
// Testing-only fault injection, generalized from the original single
// TRAP_TESTING_FAULT hook into a registry of named, seeded, probabilistic
// fault sites. Production code consults ShouldFire(site, key) at
// well-defined points and deliberately fails (or mis-computes, for the
// legacy silent fault) when the draw fires, so the fault-tolerance runtime
// and the property-testing oracles can prove they survive and surface real
// failures of that shape.
//
// Determinism: a draw is a pure function of (config seed, site, key) --
// `HashToUnit(HashCombine(seed, HashCombine(site_tag, key))) < probability`.
// Callers pass a key derived from the work item (query fingerprint, config
// fingerprint, workload fingerprint) mixed with the EvalContext fault_salt,
// so the *same* logical operation draws the same answer on every run and
// every thread count, while retry attempts (which re-salt) redraw.
//
// Spec grammar (TRAP_FAULTS env var or FaultRegistry::Configure):
//   spec    := entry ("," entry)*
//   entry   := site-name ["@p=" float] ["@limit=" int]
//   example: "engine.whatif.cost_error@p=0.05,advisor.recommend.fail@p=1"
// Probability defaults to 1.0. `limit` caps the number of times the site
// fires (an atomic countdown); note that with limit set, *which* concurrent
// work items observe the fault can depend on scheduling -- probabilistic
// specs without limits are fully deterministic and are what the campaign
// and the determinism tests use.
//
// With no site armed, ShouldFire costs one relaxed atomic load.
enum class FaultSite : int {
  // The what-if cost model produces a non-finite cost for the drawn key.
  // Detected by cost validation -> kInternal, never cached, never silent.
  kWhatIfCostError = 0,
  // The what-if evaluation reports kDeadlineExceeded for the drawn key.
  kWhatIfTimeout,
  // The advisor's recommend entry point fails with kFaultInjected.
  kAdvisorRecommendFail,
  // The advisor's recommend entry point consumes the caller's entire step
  // budget (a simulated hang, surfaced as kDeadlineExceeded).
  kAdvisorRecommendHang,
  // A what-if cache shard stores a corrupted cost. The always-on entry
  // checksum detects the corruption on hit and recomputes (self-healing).
  kCacheShardPoison,
  // The perturber emits an invalid perturbed tree for the drawn query; the
  // generator degrades that query to its unperturbed original.
  kPerturberInvalidTree,
  // Legacy silent fault (PR 3's invert_index_benefit): CostModel::QueryCost
  // reports base + (base - cost) for non-empty configurations, flipping
  // every index benefit into a penalty. Caught by the add-index-monotone
  // oracle; kept to prove the oracles still detect silent wrong answers.
  kWhatIfInvertBenefit,

  // Process-level campaign faults (TRAP_CAMPAIGN_FAULTS). These share the
  // site namespace and spec grammar so one parser serves both, but they are
  // never armed in this in-process registry: the campaign keeps its own
  // WorkerFaultPlan (src/campaign/fault.h), because the per-case
  // ScopedFaultSpec arming below would clobber a registry-held plan.
  //
  // A campaign worker raises SIGKILL mid-shard.
  kCampaignWorkerCrash,
  // A campaign worker swallows its work unit and never replies.
  kCampaignWorkerHang,
  // A campaign worker replies with a garbage frame instead of a result.
  kCampaignWorkerGarbageFrame,

  kNumFaultSites,
};

inline constexpr int kNumFaultSites =
    static_cast<int>(FaultSite::kNumFaultSites);

const char* FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);

struct FaultSiteConfig {
  FaultSite site = FaultSite::kWhatIfCostError;
  double probability = 1.0;  // in [0, 1]
  // Maximum number of firings; negative = unlimited.
  std::int64_t limit = -1;
};

struct FaultSpec {
  std::vector<FaultSiteConfig> sites;
  std::uint64_t seed = 0;
};

// Parses the comma-separated spec grammar above. Returns nullopt and fills
// *error on malformed input.
std::optional<FaultSpec> ParseFaultSpec(std::string_view spec,
                                        std::uint64_t seed,
                                        std::string* error);

class FaultRegistry {
 public:
  // The process-wide registry consulted by the injection points.
  static FaultRegistry& Global();

  // Replaces the active configuration and resets all counters. Thread-safe
  // with respect to concurrent ShouldFire, but configuration itself is
  // expected from a quiesced test/CLI context.
  void Configure(const FaultSpec& spec);
  void Reset() { Configure(FaultSpec{}); }

  // True iff `site` is armed and the deterministic draw for `key` fires.
  // Increments the site's hit counter when it fires. `key` must identify
  // the logical work item (fingerprints + fault_salt), not its schedule.
  bool ShouldFire(FaultSite site, std::uint64_t key);

  // True iff the site is armed at all (probability > 0, limit not spent).
  bool armed(FaultSite site) const;

  // Number of times `site` fired since the last Configure/Reset.
  std::int64_t hits(FaultSite site) const;
  // Total across all sites.
  std::int64_t total_hits() const;

  // One-time lazy init from TRAP_TESTING_FAULT / TRAP_FAULTS /
  // TRAP_FAULT_SEED; a no-op after the first Configure or call.
  void EnsureInitFromEnv();

  struct SiteState;  // defined in fault.cc

 private:
  FaultRegistry() = default;
  SiteState* state(FaultSite site) const;
};

// Convenience wrapper over Global().ShouldFire with the env-lazy-init
// behaviour folded in; this is what the injection points call.
bool FaultShouldFire(FaultSite site, std::uint64_t key);

// RAII: configures the global registry from a spec string for a test scope,
// restoring a clean (all-disarmed) registry on destruction. Aborts on a
// malformed spec -- test-only convenience.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(std::string_view spec, std::uint64_t seed = 0);
  ~ScopedFaultSpec();
  ScopedFaultSpec(const ScopedFaultSpec&) = delete;
  ScopedFaultSpec& operator=(const ScopedFaultSpec&) = delete;
};

// ---------------------------------------------------------------------------
// Legacy single-fault API (PR 3), kept source-compatible.
// ---------------------------------------------------------------------------
// kInvertIndexBenefit now arms the registry site kWhatIfInvertBenefit at
// probability 1.0; TRAP_TESTING_FAULT=invert_index_benefit still works.
enum class InjectedFault {
  kNone,
  kInvertIndexBenefit,
};

const char* FaultName(InjectedFault f);
std::optional<InjectedFault> FaultFromName(std::string_view name);

// The currently armed legacy fault, derived from the registry state.
InjectedFault ActiveFault();

// Arms `f` for the whole process, overriding the environment. Clears any
// spec-configured sites (legacy semantics: one fault at a time).
void SetInjectedFault(InjectedFault f);

}  // namespace trap::common

#endif  // TRAP_COMMON_FAULT_H_
