# Empty compiler generated dependencies file for advisor_bakeoff.
# This may be replaced when dependencies are built.
