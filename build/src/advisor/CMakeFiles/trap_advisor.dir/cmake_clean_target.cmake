file(REMOVE_RECURSE
  "libtrap_advisor.a"
)
