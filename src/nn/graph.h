#ifndef TRAP_NN_GRAPH_H_
#define TRAP_NN_GRAPH_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace trap::nn {

// A trainable parameter: value plus accumulated gradient. Parameters are
// owned by layers/models; Graph borrows them for the duration of one
// forward/backward pass.
struct Parameter {
  Matrix value;
  Matrix grad;
  // Adam moments (managed by the optimizer).
  Matrix m;
  Matrix v;

  explicit Parameter(int rows, int cols)
      : value(rows, cols), grad(rows, cols), m(rows, cols), v(rows, cols) {}
};

// Reverse-mode autograd on a tape. One Graph instance is one forward pass;
// Backward() propagates into Parameter::grad. Keeping the engine explicit
// and minimal (a dozen ops) gives exact gradients for the GRU
// encoder-decoder, the attention mechanism, and the transformer baselines
// without hand-derived backward passes.
class Graph {
 public:
  using VarId = int;

  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Leaf holding a constant (no gradient).
  VarId Input(Matrix value);
  // Leaf bound to a trainable parameter (gradient accumulated on Backward).
  VarId Param(Parameter* p);
  // Row-gather from a parameter matrix: out[i, :] = p->value[ids[i], :].
  // Gradients scatter back into the gathered rows only (sparse update).
  VarId Gather(Parameter* p, std::vector<int> ids);

  VarId MatMul(VarId a, VarId b);
  VarId Transpose(VarId a);
  // Elementwise add; `b` may also be a 1-row matrix broadcast over a's rows.
  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  VarId Mul(VarId a, VarId b);  // elementwise (Hadamard)
  VarId Scale(VarId a, double s);
  VarId Tanh(VarId a);
  VarId Sigmoid(VarId a);
  VarId Relu(VarId a);
  // Row-wise softmax.
  VarId Softmax(VarId a);
  // Row-wise log-softmax (numerically stable).
  VarId LogSoftmax(VarId a);
  // Concatenate along columns: [a, b] (same row count).
  VarId ConcatCols(VarId a, VarId b);
  // 1x1 matrix picking element (r, c) of `a`.
  VarId Pick(VarId a, int r, int c);
  // 1x1 sum of all elements.
  VarId Sum(VarId a);
  // 1x1 mean of all elements.
  VarId Mean(VarId a);
  // Row-wise layer normalization with learnable gain/bias parameters
  // (gain/bias are 1xC parameters).
  VarId LayerNorm(VarId a, Parameter* gain, Parameter* bias);

  const Matrix& value(VarId id) const;

  // Back-propagates d(loss)/d(everything) from `loss`, which must be 1x1.
  // Parameter gradients are *accumulated* (call ZeroGrad on the optimizer
  // side between steps).
  void Backward(VarId loss);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    std::vector<VarId> inputs;
    std::function<void(Graph&, Node&)> backward;  // may be empty for leaves
    Parameter* param = nullptr;                   // for Param leaves
    std::vector<int> gather_ids;                  // for Gather leaves
  };

  VarId AddNode(Matrix value, std::vector<VarId> inputs,
                std::function<void(Graph&, Node&)> backward);
  Node& node(VarId id) { return *nodes_[static_cast<size_t>(id)]; }

  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace trap::nn

#endif  // TRAP_NN_GRAPH_H_
