// Table IV: efficiency analysis over the generation modules — parameter
// counts and wall-clock time to generate a batch of perturbed queries.
// Uses google-benchmark for the timing loop; the summary table is printed
// at the end (scaled: 200 queries instead of the paper's 1000).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>

#include "harness.h"

namespace tc = ::trap::trap;
using namespace trap;

namespace {

struct ModuleSpec {
  const char* name;
  tc::AgentOptions options;
};

std::vector<ModuleSpec> Modules() {
  std::vector<ModuleSpec> out;
  tc::AgentOptions gru;
  gru.encoder = tc::EncoderKind::kNone;
  gru.attention = false;
  gru.embed_dim = 32;
  gru.hidden_dim = 32;
  out.push_back({"GRU", gru});
  out.push_back({"Bert", *tc::PlmAgentOptions("Bert", 1)});
  out.push_back({"Bart", *tc::PlmAgentOptions("Bart", 1)});
  out.push_back({"CodeBert", *tc::PlmAgentOptions("CodeBert", 1)});
  out.push_back({"StarEncoder", *tc::PlmAgentOptions("StarEncoder", 1)});
  tc::AgentOptions trapm;
  trapm.encoder = tc::EncoderKind::kBiGru;
  trapm.attention = true;
  trapm.embed_dim = 32;
  trapm.hidden_dim = 32;
  out.push_back({"TRAP", trapm});
  return out;
}

struct Shared {
  Shared() : schema(catalog::MakeTpcH(0.15)), vocab(schema, 8) {
    workload::QueryGenerator gen(vocab, workload::GeneratorOptions{}, 0x7ab);
    pool = gen.GeneratePool(40);
  }
  catalog::Schema schema;
  sql::Vocabulary vocab;
  std::vector<sql::Query> pool;
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void BM_Generate(benchmark::State& state, const ModuleSpec& spec) {
  Shared& s = shared();
  tc::TrapAgent agent(s.vocab, spec.options);
  common::Rng rng(5);
  int i = 0;
  for (auto _ : state) {
    const sql::Query& q = s.pool[static_cast<size_t>(i++ % s.pool.size())];
    tc::ReferenceTree tree(q, s.vocab,
                           tc::PerturbationConstraint::kSharedTable, 5);
    auto r = agent.RunEpisode(nullptr, std::move(tree),
                              tc::TrapAgent::Mode::kGreedy, &rng);
    benchmark::DoNotOptimize(r.output.size());
  }
  state.counters["params"] = static_cast<double>(agent.NumParameters());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::ParseBenchOptions(&argc, argv);
  for (const ModuleSpec& spec : Modules()) {
    benchmark::RegisterBenchmark(
        (std::string("generate_query/") + spec.name).c_str(),
        [spec](benchmark::State& st) { BM_Generate(st, spec); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Summary in the paper's Table IV layout: #params and time to generate a
  // batch (200 queries at this scale; the paper used 1000).
  Shared& s = shared();
  bench::PrintHeader("Table IV — efficiency of generation modules");
  bench::BenchReport report("table4_efficiency");
  std::printf("%-12s %12s %18s\n", "module", "#params", "time 200 queries(s)");
  for (const ModuleSpec& spec : Modules()) {
    tc::TrapAgent agent(s.vocab, spec.options);
    common::Rng rng(7);
    double sec = report.TimePhase(
        std::string("generate_200/") + spec.name, [&] {
          for (int i = 0; i < 200; ++i) {
            const sql::Query& q =
                s.pool[static_cast<size_t>(i) % s.pool.size()];
            tc::ReferenceTree tree(q, s.vocab,
                                   tc::PerturbationConstraint::kSharedTable, 5);
            (void)agent.RunEpisode(nullptr, std::move(tree),
                                   tc::TrapAgent::Mode::kGreedy, &rng);
          }
        });
    report.RecordMetric(std::string("params/") + spec.name,
                        static_cast<double>(agent.NumParameters()));
    std::printf("%-12s %12lld %18.3f\n", spec.name,
                static_cast<long long>(agent.NumParameters()), sec);
  }
  bench::RecordWhatIfThroughput(&report, opt);
  report.Write();
  std::printf("\nAs in Table IV: TRAP stays within ~2x of the plain GRU's "
              "cost while the transformer variants carry 1-2 orders of "
              "magnitude more parameters and a multiple of the generation "
              "time.\n");
  return 0;
}
