#ifndef TRAP_TRAP_CONSTRAINTS_H_
#define TRAP_TRAP_CONSTRAINTS_H_

namespace trap::trap {

// The three perturbation constraints of Section III (Table I). They differ
// in which token types may be modified:
//   kValueOnly        — predicate literals only (template parameter drift);
//   kColumnConsistent — columns (drawn from the original query's column set)
//                       and literals;
//   kSharedTable      — columns over the same table schema, literals,
//                       conjunctions, operators and aggregators, plus new
//                       payload items and predicates.
// Join predicates (the join graph) are never modified.
enum class PerturbationConstraint {
  kValueOnly,
  kColumnConsistent,
  kSharedTable,
};

inline const char* ConstraintName(PerturbationConstraint c) {
  switch (c) {
    case PerturbationConstraint::kValueOnly: return "ValueOnly";
    case PerturbationConstraint::kColumnConsistent: return "ColumnConsistent";
    case PerturbationConstraint::kSharedTable: return "SharedTable";
  }
  return "?";
}

}  // namespace trap::trap

#endif  // TRAP_TRAP_CONSTRAINTS_H_
