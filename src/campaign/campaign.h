#ifndef TRAP_CAMPAIGN_CAMPAIGN_H_
#define TRAP_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "advisor/evaluation.h"
#include "campaign/fault.h"
#include "common/status.h"
#include "testing/fault_campaign.h"

namespace trap::campaign {

// Crash-tolerant distributed runner for the fault campaign: shards the
// deterministic case enumeration, fans the shards out to worker
// subprocesses (trap_campaign --worker), supervises them (per-unit
// deadlines, bounded seeded retries, re-dispatch of orphaned shards), and
// merges the per-case results into the same order-independent digest the
// single-process run produces. With workers == 0 the shards run in-process
// through the identical shard/merge/checkpoint machinery, so the digest is
// bit-identical across topologies by construction *and* asserted by
// scripts/check.sh.
struct CampaignOptions {
  proptest::FaultCampaignOptions base;

  int workers = 0;  // subprocess count; 0 = in-process fallback
  // Shard count; 0 = auto (min(cases, 8), independent of `workers`, so a
  // journal resumes correctly under a different worker count).
  int shards = 0;
  // Dispatch attempts per shard before it is abandoned as a ShardFailure.
  int max_attempts = 4;
  // Supervisor deadline for one unit (and, x6, for worker init -- init
  // runs the fault-free baselines, roughly half a shard of real work).
  int unit_timeout_ms = 10000;

  // Checkpoint journal path; empty = no checkpointing. Written atomically
  // (common::AtomicWriteFile, fsync'd) after every completed shard.
  std::string journal_path;
  // Replay completed shards from journal_path and run only the remainder.
  // A missing journal file is a fresh run, not an error; a journal written
  // under a different spec fingerprint is an error.
  bool resume = false;

  // Binary spawned for workers (with "--worker"); required when
  // workers > 0. trap_campaign passes its own path.
  std::string worker_binary;

  // Injected process-level faults (see campaign/fault.h).
  WorkerFaultPlan worker_faults;

  // Test/drill hook: simulate a coordinator crash by stopping (killing all
  // workers, abandoning in-flight shards) after this many shard
  // completions in this run. Negative = run to completion.
  int stop_after_shards = -1;
};

// A shard that exhausted its dispatch attempts. Never silent: the lost
// case range is reported, coverage accounting includes it, and it maps to
// a structured advisor::FailureRecord in report JSON.
struct ShardFailure {
  int shard_id = 0;
  std::string site;  // worker.crash | worker.hang | worker.garbage_frame
  int attempts = 0;
  int begin = 0;  // case range lost
  int end = 0;
  std::string message;
};

struct CampaignReport {
  // Completed cases, sorted by case_index. With failed shards this is a
  // strict subset of the enumeration (partial coverage, never gaps that
  // pretend to be coverage).
  std::vector<proptest::CampaignCase> cases;
  std::vector<ShardFailure> failed_shards;

  int total_cases = 0;
  int completed_cases = 0;
  int violations = 0;          // cases with a non-empty note
  std::uint64_t digest = 0;    // XOR of CampaignCaseHash over `cases`

  int shards = 0;              // shard-plan size
  int retries = 0;             // shard re-dispatches after a worker fault
  int worker_restarts = 0;     // workers respawned after death
  int resumed_shards = 0;      // shards replayed from the journal
  bool interrupted = false;    // stop_after_shards fired

  bool ok() const {
    return violations == 0 && failed_shards.empty() && !interrupted &&
           completed_cases == total_cases;
  }

  // Failed shards as structured failure records (for BenchReport JSON).
  std::vector<advisor::FailureRecord> FailureRecords() const;
};

// Runs the campaign. Configuration errors (unknown schema, bad journal,
// spawn failure) are a Status; worker faults are not -- they surface in
// the report as retries, restarts, and at worst ShardFailures. Progress
// goes to `log` when non-null.
common::StatusOr<CampaignReport> RunCampaign(const CampaignOptions& opts,
                                             std::FILE* log);

}  // namespace trap::campaign

#endif  // TRAP_CAMPAIGN_CAMPAIGN_H_
