#ifndef TRAP_NN_TRANSFORMER_H_
#define TRAP_NN_TRANSFORMER_H_

#include <vector>

#include "nn/layers.h"

namespace trap::nn {

// A pre-LN transformer encoder stack. Used as the stand-in for the
// pre-trained-language-model baselines of the paper's Fig. 7 / Table IV
// (Bert / Bart / CodeBert / StarEncoder): same architecture family, scaled to
// a size trainable on this machine, so the parameter-count and
// generation-time comparisons keep their shape.
struct TransformerConfig {
  int dim = 64;
  int num_heads = 4;
  int ff_dim = 256;
  int num_layers = 2;
};

class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(ParameterStore* store, const TransformerConfig& cfg,
                          common::Rng& rng);

  // x: (n x dim) -> (n x dim).
  Graph::VarId Forward(Graph& g, Graph::VarId x) const;

 private:
  TransformerConfig cfg_;
  // Per-head projections.
  std::vector<Linear> wq_, wk_, wv_;
  Linear wo_;
  Linear ff1_, ff2_;
  Parameter* ln1_gain_;
  Parameter* ln1_bias_;
  Parameter* ln2_gain_;
  Parameter* ln2_bias_;
};

class TransformerEncoder {
 public:
  TransformerEncoder(ParameterStore* store, const TransformerConfig& cfg,
                     common::Rng& rng);

  Graph::VarId Forward(Graph& g, Graph::VarId x) const;

  const TransformerConfig& config() const { return cfg_; }

 private:
  TransformerConfig cfg_;
  std::vector<TransformerEncoderLayer> layers_;
};

// Sinusoidal positional encodings, (n x dim).
Matrix PositionalEncoding(int n, int dim);

}  // namespace trap::nn

#endif  // TRAP_NN_TRANSFORMER_H_
