#include "common/rpc.h"

#include <utility>

namespace trap::common::rpc {

namespace {

// Version check shared by all three decoders. The "rpc" member is required
// on every envelope so a single stray frame from a newer protocol fails
// loudly instead of decoding as a half-empty message.
Status CheckVersion(const JsonValue& v) {
  const std::optional<std::int64_t> ver = v.IntAt("rpc");
  if (!ver.has_value() || *ver != kProtocolVersion) {
    return Status::InvalidArgument("rpc: version mismatch");
  }
  return Status::Ok();
}

}  // namespace

Status Response::ToStatus() const {
  if (status == StatusCode::kOk) return Status::Ok();
  return Status(status, message);
}

std::string EncodeRequest(const Request& req) {
  JsonValue v = JsonValue::Object();
  v.Set("rpc", JsonValue::Number(kProtocolVersion));
  v.Set("id", JsonValue::Hex(req.id));
  v.Set("method", JsonValue::Str(req.method));
  if (req.params.kind != JsonValue::Kind::kNull) {
    v.Set("params", req.params);
  }
  return WriteJson(v);
}

std::string EncodeResponse(const Response& resp) {
  JsonValue v = JsonValue::Object();
  v.Set("rpc", JsonValue::Number(kProtocolVersion));
  v.Set("id", JsonValue::Hex(resp.id));
  v.Set("status", JsonValue::Str(StatusCodeName(resp.status)));
  if (!resp.message.empty()) {
    v.Set("message", JsonValue::Str(resp.message));
  }
  if (resp.result.kind != JsonValue::Kind::kNull) {
    v.Set("result", resp.result);
  }
  return WriteJson(v);
}

std::string EncodeHello(std::string_view role) {
  JsonValue v = JsonValue::Object();
  v.Set("rpc", JsonValue::Number(kProtocolVersion));
  v.Set("hello", JsonValue::Str(std::string(role)));
  return WriteJson(v);
}

StatusOr<Request> DecodeRequest(std::string_view payload) {
  StatusOr<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (Status s = CheckVersion(v); !s.ok()) return s;
  const std::optional<std::uint64_t> id = v.HexAt("id");
  std::optional<std::string> method = v.StringAt("method");
  if (!id.has_value() || !method.has_value() || method->empty()) {
    return Status::InvalidArgument("rpc: request missing id/method");
  }
  Request req;
  req.id = *id;
  req.method = *std::move(method);
  if (const JsonValue* params = v.Find("params"); params != nullptr) {
    req.params = *params;
  }
  return req;
}

StatusOr<Response> DecodeResponse(std::string_view payload) {
  StatusOr<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (Status s = CheckVersion(v); !s.ok()) return s;
  const std::optional<std::uint64_t> id = v.HexAt("id");
  const std::optional<std::string> status = v.StringAt("status");
  if (!id.has_value() || !status.has_value()) {
    return Status::InvalidArgument("rpc: response missing id/status");
  }
  Response resp;
  resp.id = *id;
  resp.status = ParseStatusCode(*status);
  if (std::optional<std::string> msg = v.StringAt("message");
      msg.has_value()) {
    resp.message = *std::move(msg);
  }
  if (const JsonValue* result = v.Find("result"); result != nullptr) {
    resp.result = *result;
  }
  return resp;
}

Status CheckHello(std::string_view payload, std::string_view want_role) {
  StatusOr<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) return parsed.status();
  if (Status s = CheckVersion(*parsed); !s.ok()) return s;
  const std::optional<std::string> role = parsed->StringAt("hello");
  if (!role.has_value()) {
    return Status::InvalidArgument("rpc: not a hello frame");
  }
  if (*role != want_role) {
    return Status::InvalidArgument("rpc: unexpected peer role '" + *role +
                                   "'");
  }
  return Status::Ok();
}

Response OkResponse(std::uint64_t id, JsonValue result) {
  Response resp;
  resp.id = id;
  resp.status = StatusCode::kOk;
  resp.result = std::move(result);
  return resp;
}

Response ErrorResponse(std::uint64_t id, const Status& status) {
  Response resp;
  resp.id = id;
  resp.status = status.code();
  resp.message = status.message();
  return resp;
}

StatusCode ParseStatusCode(std::string_view name) {
  for (int i = static_cast<int>(StatusCode::kOk);
       i <= static_cast<int>(StatusCode::kUnavailable); ++i) {
    const StatusCode code = static_cast<StatusCode>(i);
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace trap::common::rpc
