#include <gtest/gtest.h>

#include "catalog/datasets.h"
#include "sql/tokenizer.h"
#include "trap/reference_tree.h"
#include "workload/generator.h"

namespace trap::trap {
namespace {

using catalog::MakeTpcH;

class ReferenceTreeTest
    : public ::testing::TestWithParam<PerturbationConstraint> {
 protected:
  ReferenceTreeTest() : schema_(MakeTpcH()), vocab_(schema_, 8) {}

  catalog::Schema schema_;
  sql::Vocabulary vocab_;
};

// Drives the tree with a policy that always keeps the original token (and
// stops at extensions): the output must equal the original token sequence.
TEST_P(ReferenceTreeTest, KeepOriginalPolicyIsIdentity) {
  workload::QueryGenerator gen(vocab_, workload::GeneratorOptions{}, 301);
  for (int i = 0; i < 50; ++i) {
    sql::Query q = gen.Generate();
    ReferenceTree tree(q, vocab_, GetParam(), 5);
    while (!tree.Done()) {
      tree.Advance(tree.OriginalTokenId());
    }
    EXPECT_EQ(tree.edit_distance(), 0);
    EXPECT_EQ(tree.output(), sql::ToTokens(q, vocab_));
    EXPECT_EQ(tree.Materialize(), q);
  }
}

// Random policy: every materialized query is valid, within budget, and
// tokenizes back consistently.
TEST_P(ReferenceTreeTest, RandomPolicyProducesValidQueriesWithinBudget) {
  workload::QueryGenerator gen(vocab_, workload::GeneratorOptions{}, 307);
  common::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    sql::Query q = gen.Generate();
    int epsilon = static_cast<int>(rng.UniformInt(0, 8));
    ReferenceTree tree(q, vocab_, GetParam(), epsilon);
    while (!tree.Done()) {
      const std::vector<int>& legal = tree.LegalTokens();
      ASSERT_FALSE(legal.empty());
      tree.Advance(rng.Choice(legal));
    }
    EXPECT_LE(tree.edit_distance(), epsilon);
    sql::Query out = tree.Materialize();
    std::string err;
    EXPECT_TRUE(sql::ValidateQuery(out, schema_, &err))
        << err << "\noriginal: " << sql::ToSql(q, schema_)
        << "\nperturbed: " << sql::ToSql(out, schema_);
    // Definition 3.4's distance metric: token-level edit distance <= eps.
    EXPECT_LE(sql::EditDistance(sql::ToTokens(q, vocab_), tree.output()),
              epsilon)
        << sql::ToSql(q, schema_) << " -> " << sql::ToSql(out, schema_);
  }
}

// The budget boundary is exact for every constraint kind: a walk may spend
// edits up to exactly epsilon (accepted), and the moment the budget is
// exhausted the legitimate set collapses to the original continuation — the
// (epsilon+1)-th edit is never offered.
TEST_P(ReferenceTreeTest, ExactBudgetAcceptedOnePastRejected) {
  workload::QueryGenerator gen(vocab_, workload::GeneratorOptions{}, 313);
  int exhausted_walks = 0;
  for (int i = 0; i < 80; ++i) {
    sql::Query q = gen.Generate();
    for (int epsilon : {1, 2}) {
      ReferenceTree tree(q, vocab_, GetParam(), epsilon);
      while (!tree.Done()) {
        const std::vector<int>& legal = tree.LegalTokens();
        ASSERT_FALSE(legal.empty());
        if (tree.edit_distance() >= epsilon) {
          // One past the budget: only the original token may be legal.
          ASSERT_EQ(legal.size(), 1u);
          ASSERT_EQ(legal[0], tree.OriginalTokenId());
          tree.Advance(legal[0]);
          continue;
        }
        // Greedy: take the first modifying token whenever one is offered.
        int pick = tree.OriginalTokenId();
        for (int id : legal) {
          if (id != tree.OriginalTokenId()) {
            pick = id;
            break;
          }
        }
        tree.Advance(pick);
        ASSERT_LE(tree.edit_distance(), epsilon);
      }
      // Exactly-at-budget outputs are accepted: valid SQL within distance.
      EXPECT_LE(tree.edit_distance(), epsilon);
      sql::Query out = tree.Materialize();
      std::string err;
      EXPECT_TRUE(sql::ValidateQuery(out, schema_, &err)) << err;
      EXPECT_LE(sql::EditDistance(sql::ToTokens(q, vocab_), tree.output()),
                epsilon);
      if (tree.edit_distance() == epsilon) ++exhausted_walks;
    }
  }
  // The greedy policy must actually reach the boundary, or the test above
  // proved nothing.
  EXPECT_GT(exhausted_walks, 0) << ConstraintName(GetParam());
}

TEST_P(ReferenceTreeTest, ZeroBudgetForcesIdentity) {
  workload::QueryGenerator gen(vocab_, workload::GeneratorOptions{}, 311);
  common::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    sql::Query q = gen.Generate();
    ReferenceTree tree(q, vocab_, GetParam(), 0);
    while (!tree.Done()) {
      const std::vector<int>& legal = tree.LegalTokens();
      tree.Advance(rng.Choice(legal));  // any legal choice
    }
    EXPECT_EQ(tree.Materialize(), q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConstraints, ReferenceTreeTest,
    ::testing::Values(PerturbationConstraint::kValueOnly,
                      PerturbationConstraint::kColumnConsistent,
                      PerturbationConstraint::kSharedTable),
    [](const auto& suite_info) { return ConstraintName(suite_info.param); });

class TreeBehaviourTest : public ::testing::Test {
 protected:
  TreeBehaviourTest() : schema_(MakeTpcH()), vocab_(schema_, 8) {}

  sql::Query FilterQuery(int num_filters) {
    sql::Query q;
    auto qty = *schema_.FindColumn("lineitem", "l_quantity");
    auto disc = *schema_.FindColumn("lineitem", "l_discount");
    auto ship = *schema_.FindColumn("lineitem", "l_shipdate");
    q.select = {sql::SelectItem{sql::AggFunc::kNone, qty}};
    q.tables = {*schema_.FindTable("lineitem")};
    std::vector<catalog::ColumnId> cols = {ship, disc, qty};
    for (int i = 0; i < num_filters; ++i) {
      q.filters.push_back(sql::Predicate{cols[static_cast<size_t>(i)],
                                         sql::CmpOp::kGt,
                                         vocab_.BucketValue(cols[static_cast<size_t>(i)], 2)});
    }
    return q;
  }

  catalog::Schema schema_;
  sql::Vocabulary vocab_;
};

TEST_F(TreeBehaviourTest, ValueOnlyRestrictsModificationsToValues) {
  sql::Query q = FilterQuery(2);
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kValueOnly, 5);
  while (!tree.Done()) {
    const std::vector<int>& legal = tree.LegalTokens();
    sql::Token orig = vocab_.IdToToken(tree.OriginalTokenId());
    if (orig.type != sql::TokenType::kValue) {
      EXPECT_EQ(legal.size(), 1u);
    }
    tree.Advance(tree.OriginalTokenId());
  }
}

TEST_F(TreeBehaviourTest, ValueOnlyOffersAllBucketsOfColumn) {
  sql::Query q = FilterQuery(1);
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kValueOnly, 5);
  bool saw_value_slot = false;
  while (!tree.Done()) {
    sql::Token orig = vocab_.IdToToken(tree.OriginalTokenId());
    if (orig.type == sql::TokenType::kValue) {
      saw_value_slot = true;
      EXPECT_EQ(tree.LegalTokens().size(),
                static_cast<size_t>(vocab_.values_per_column()));
    }
    tree.Advance(tree.OriginalTokenId());
  }
  EXPECT_TRUE(saw_value_slot);
}

TEST_F(TreeBehaviourTest, ColumnRebindUpdatesValueRegion) {
  sql::Query q = FilterQuery(1);  // single filter on l_shipdate
  auto ship = *schema_.FindColumn("lineitem", "l_shipdate");
  auto tax = *schema_.FindColumn("lineitem", "l_tax");
  ReferenceTree st(q, vocab_, PerturbationConstraint::kSharedTable, 5);
  bool rebound = false;
  bool checked_value = false;
  while (!st.Done()) {
    sql::Token orig = vocab_.IdToToken(st.OriginalTokenId());
    // The filter column slot is the one whose original is l_shipdate.
    if (orig.type == sql::TokenType::kColumn && orig.column == ship &&
        !rebound) {
      int id = vocab_.ColumnTokenId(tax);
      const std::vector<int>& legal = st.LegalTokens();
      ASSERT_TRUE(std::find(legal.begin(), legal.end(), id) != legal.end());
      st.Advance(id);
      rebound = true;
      continue;
    }
    if (orig.type == sql::TokenType::kValue && rebound) {
      // The legitimate vocabulary must now be l_tax's value region
      // (Algorithm 1's look-ahead: ?#value instantiated by the new column).
      checked_value = true;
      for (int id : st.LegalTokens()) {
        sql::Token t = vocab_.IdToToken(id);
        EXPECT_EQ(t.type, sql::TokenType::kValue);
        EXPECT_EQ(t.column, tax);
      }
    }
    st.Advance(st.LegalTokens()[0]);
  }
  EXPECT_TRUE(rebound);
  EXPECT_TRUE(checked_value);
  sql::Query out = st.Materialize();
  std::string err;
  EXPECT_TRUE(sql::ValidateQuery(out, schema_, &err)) << err;
  ASSERT_EQ(out.filters.size(), 1u);
  EXPECT_EQ(out.filters[0].column, tax);
}

TEST_F(TreeBehaviourTest, ConjunctionFlipForcesConsistency) {
  sql::Query q = FilterQuery(3);  // two conjunction slots
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kSharedTable, 5);
  bool flipped = false;
  while (!tree.Done()) {
    sql::Token orig = vocab_.IdToToken(tree.OriginalTokenId());
    if (orig.type == sql::TokenType::kConjunction && !flipped) {
      int or_id = vocab_.TokenToId(sql::Token::Conj(sql::Conjunction::kOr));
      const std::vector<int>& legal = tree.LegalTokens();
      ASSERT_TRUE(std::find(legal.begin(), legal.end(), or_id) != legal.end());
      tree.Advance(or_id);
      flipped = true;
      continue;
    }
    if (orig.type == sql::TokenType::kConjunction && flipped) {
      // Forced: only OR is legal now.
      ASSERT_EQ(tree.LegalTokens().size(), 1u);
      sql::Token t = vocab_.IdToToken(tree.LegalTokens()[0]);
      EXPECT_EQ(t.conjunction, sql::Conjunction::kOr);
    }
    tree.Advance(tree.LegalTokens()[0]);
  }
  ASSERT_TRUE(flipped);
  EXPECT_EQ(tree.Materialize().conjunction, sql::Conjunction::kOr);
  // Flip cost was pre-paid: 1 + number of forced later conjunctions.
  EXPECT_EQ(tree.edit_distance(), 2);
}

TEST_F(TreeBehaviourTest, ConjunctionFlipBlockedWhenBudgetTooSmall) {
  sql::Query q = FilterQuery(3);
  // Flipping costs 1 + 1 forced = 2; budget 1 must not offer OR.
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kSharedTable, 1);
  while (!tree.Done()) {
    sql::Token orig = vocab_.IdToToken(tree.OriginalTokenId());
    if (orig.type == sql::TokenType::kConjunction) {
      for (int id : tree.LegalTokens()) {
        EXPECT_EQ(vocab_.IdToToken(id).conjunction, sql::Conjunction::kAnd);
      }
    }
    tree.Advance(tree.OriginalTokenId());
  }
}

TEST_F(TreeBehaviourTest, SharedTableCanAddPredicateCostingFour) {
  sql::Query q = FilterQuery(1);
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kSharedTable, 4);
  bool extended = false;
  while (!tree.Done()) {
    const std::vector<int>& legal = tree.LegalTokens();
    // At the WHERE extension marker, a conjunction separator is offered.
    if (!extended && legal.size() > 1) {
      int sep = -1;
      for (int id : legal) {
        sql::Token t = vocab_.IdToToken(id);
        if (t.type == sql::TokenType::kConjunction) sep = id;
      }
      if (sep >= 0 && tree.edit_distance() == 0) {
        tree.Advance(sep);
        // column -> op -> value follow.
        tree.Advance(tree.LegalTokens()[0]);
        tree.Advance(tree.LegalTokens()[0]);
        tree.Advance(tree.LegalTokens()[0]);
        extended = true;
        continue;
      }
    }
    tree.Advance(tree.OriginalTokenId());
  }
  ASSERT_TRUE(extended);
  EXPECT_EQ(tree.edit_distance(), 4);
  sql::Query out = tree.Materialize();
  EXPECT_EQ(out.filters.size(), 2u);
  EXPECT_TRUE(sql::ValidateQuery(out, schema_));
}

TEST_F(TreeBehaviourTest, NoPredicateExtensionUnderSmallBudget) {
  sql::Query q = FilterQuery(1);
  ReferenceTree tree(q, vocab_, PerturbationConstraint::kSharedTable, 3);
  while (!tree.Done()) {
    for (int id : tree.LegalTokens()) {
      sql::Token t = vocab_.IdToToken(id);
      // No conjunction separator may be offered with budget < 4.
      if (tree.edit_distance() == 0) {
        EXPECT_NE(t.type == sql::TokenType::kConjunction &&
                      vocab_.IdToToken(tree.OriginalTokenId()).type ==
                          sql::TokenType::kSpecial,
                  true);
      }
    }
    tree.Advance(tree.OriginalTokenId());
  }
}

}  // namespace
}  // namespace trap::trap
