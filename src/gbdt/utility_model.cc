#include "gbdt/utility_model.h"

#include <cmath>

#include "gbdt/features.h"

namespace trap::gbdt {

LearnedUtilityModel::LearnedUtilityModel(
    const engine::WhatIfOptimizer& optimizer,
    const engine::TrueCostModel& truth, GbdtRegressor::Options options)
    : optimizer_(&optimizer), truth_(&truth), model_(options) {}

void LearnedUtilityModel::Train(
    const std::vector<sql::Query>& queries,
    const std::vector<engine::IndexConfig>& configs) {
  TRAP_CHECK(!queries.empty());
  TRAP_CHECK(!configs.empty());
  std::vector<std::vector<double>> features;
  std::vector<double> labels;     // log-space correction: log1p(actual) - log1p(estimate)
  std::vector<double> estimates;  // raw optimizer estimates
  for (const sql::Query& q : queries) {
    for (const engine::IndexConfig& config : configs) {
      std::unique_ptr<engine::PlanNode> plan = optimizer_->Plan(q, config);
      std::vector<double> f = ExtractPlanFeatures(*plan);
      f.push_back(std::log1p(plan->cost));  // estimate itself is a feature
      features.push_back(std::move(f));
      labels.push_back(std::log1p(truth_->PlanCost(*plan, q, config)) -
                       std::log1p(plan->cost));
      estimates.push_back(plan->cost);
    }
  }
  size_t n = labels.size();
  size_t train_n = std::max<size_t>(1, n - n / 5);
  std::vector<std::vector<double>> train_x(features.begin(),
                                           features.begin() + static_cast<long>(train_n));
  std::vector<double> train_y(labels.begin(), labels.begin() + static_cast<long>(train_n));
  model_.Fit(train_x, train_y);

  if (train_n < n) {
    std::vector<std::vector<double>> test_x(features.begin() + static_cast<long>(train_n),
                                            features.end());
    std::vector<double> test_y(labels.begin() + static_cast<long>(train_n), labels.end());
    // Holdout metrics in absolute (log-cost) space.
    double opt_err = 0.0, model_err = 0.0;
    double mean_log_actual = 0.0;
    std::vector<double> log_actuals(test_y.size());
    std::vector<double> log_preds(test_y.size());
    for (size_t i = 0; i < test_y.size(); ++i) {
      double est = estimates[train_n + i];
      double actual = std::expm1(test_y[i] + std::log1p(est));
      double pred =
          std::expm1(model_.Predict(test_x[i]) + std::log1p(est));
      log_actuals[i] = std::log1p(actual);
      log_preds[i] = std::log1p(std::max(0.0, pred));
      mean_log_actual += log_actuals[i];
      opt_err += std::abs(est - actual) / std::max(1.0, actual);
      model_err += std::abs(pred - actual) / std::max(1.0, actual);
    }
    mean_log_actual /= static_cast<double>(test_y.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < test_y.size(); ++i) {
      ss_res += (log_actuals[i] - log_preds[i]) * (log_actuals[i] - log_preds[i]);
      ss_tot += (log_actuals[i] - mean_log_actual) *
                (log_actuals[i] - mean_log_actual);
    }
    holdout_r2_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    optimizer_error_ = opt_err / static_cast<double>(test_y.size());
    model_error_ = model_err / static_cast<double>(test_y.size());
  }
}

double LearnedUtilityModel::PredictQueryCost(
    const sql::Query& q, const engine::IndexConfig& config) const {
  std::unique_ptr<engine::PlanNode> plan = optimizer_->Plan(q, config);
  std::vector<double> f = ExtractPlanFeatures(*plan);
  f.push_back(std::log1p(plan->cost));
  return std::max(0.0,
                  std::expm1(model_.Predict(f) + std::log1p(plan->cost)));
}

double LearnedUtilityModel::PredictWorkloadCost(
    const workload::Workload& w, const engine::IndexConfig& config) const {
  double total = 0.0;
  for (const workload::WorkloadQuery& wq : w.queries) {
    total += wq.weight * PredictQueryCost(wq.query, config);
  }
  return total;
}

}  // namespace trap::gbdt
