#include "gbdt/features.h"

#include <cmath>

namespace trap::gbdt {

namespace {

struct WeightedSums {
  double cost = 0.0;  // g3
  double card = 0.0;  // g4
};

// Computes g3/g4 of Eq. 5 bottom-up and accumulates all four field vectors.
WeightedSums Accumulate(const engine::PlanNode& node,
                        std::vector<double>* features) {
  WeightedSums g;
  if (node.children.empty()) {
    g.cost = node.cost;
    g.card = node.cardinality;
  } else {
    for (const auto& child : node.children) {
      WeightedSums cg = Accumulate(*child, features);
      g.cost += child->height * cg.cost;
      g.card += child->height * cg.card;
    }
  }
  int type = static_cast<int>(node.type);
  int l = engine::kNumPlanNodeTypes;
  (*features)[static_cast<size_t>(0 * l + type)] += node.cost;
  (*features)[static_cast<size_t>(1 * l + type)] += node.cardinality;
  (*features)[static_cast<size_t>(2 * l + type)] += g.cost;
  (*features)[static_cast<size_t>(3 * l + type)] += g.card;
  return g;
}

}  // namespace

std::vector<double> ExtractPlanFeatures(const engine::PlanNode& root) {
  std::vector<double> features(kPlanFeatureDim, 0.0);
  Accumulate(root, &features);
  for (double& f : features) f = std::log1p(std::max(0.0, f));
  return features;
}

}  // namespace trap::gbdt
