#include "testing/trace_scenario.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "advisor/evaluation.h"
#include "advisor/registry.h"
#include "catalog/datasets.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "testing/harness.h"
#include "trap/perturber.h"
#include "workload/generator.h"

namespace trap::proptest {

common::Status RunTraceScenario(const TraceScenarioOptions& options,
                                obs::TraceSink* sink) {
  std::optional<catalog::Schema> schema = MakeSchemaByName(options.schema);
  if (!schema.has_value()) {
    return common::Status::InvalidArgument("unknown schema: " +
                                           options.schema);
  }
  obs::MetricRegistry::Global().Reset();
  sink->Reset();

  sql::Vocabulary vocab(*schema, 8);
  engine::WhatIfOptimizer optimizer(*schema);
  workload::GeneratorOptions gopt;
  gopt.max_tables = 3;
  gopt.max_filters = 3;
  workload::QueryGenerator gen(vocab, gopt, options.seed);
  std::vector<sql::Query> pool = gen.GeneratePool(options.pool_size);

  workload::Workload w;
  for (int i = 0; i < options.workload_size &&
                  i < static_cast<int>(pool.size());
       ++i) {
    w.queries.push_back(
        workload::WorkloadQuery{pool[static_cast<size_t>(i)], 1.0});
  }

  obs::ObsSink obs_sink;
  obs_sink.trace = sink;
  common::EvalContext ctx;
  ctx.obs = &obs_sink;
  ctx.pool = options.pool;
  obs::TraceSpan scenario(ctx, "scenario", options.seed);
  const common::EvalContext& sctx = scenario.ctx();

  // Phase 1: the batched candidate sweep every advisor round funnels
  // through, on the global (TRAP_THREADS-sized) pool.
  {
    obs::TraceSpan phase(sctx, "scenario.whatif_sweep", 1);
    std::vector<engine::IndexConfig> configs;
    for (int g = 0; g < options.sweep_columns && g < schema->num_columns();
         ++g) {
      engine::IndexConfig cfg;
      cfg.Add(engine::Index{{schema->ColumnFromGlobalIndex(g)}});
      configs.push_back(cfg);
    }
    TRAP_ASSIGN_OR_RETURN(
        std::vector<double> costs,
        optimizer.TryWorkloadCosts(w, configs, phase.ctx()));
    phase.AddArg("configs", static_cast<int64_t>(costs.size()));
  }

  // Phase 2: one recommendation through the fault-tolerant retry runtime.
  {
    obs::TraceSpan phase(sctx, "scenario.recommend", 2);
    TRAP_ASSIGN_OR_RETURN(std::unique_ptr<advisor::IndexAdvisor> adv,
                          advisor::MakeAdvisor(options.advisor, optimizer));
    advisor::TuningConstraint constraint = advisor::TuningConstraint::Storage(
        schema->DataSizeBytes() / 2);
    advisor::RecommendOutcome outcome = advisor::RecommendWithRetry(
        *adv, w, constraint, phase.ctx());
    TRAP_RETURN_IF_ERROR(outcome.status);
    phase.AddArg("indexes", outcome.config.size());
  }

  // Phase 3: one random perturbation pass (no training required).
  {
    obs::TraceSpan phase(sctx, "scenario.perturb", 3);
    ::trap::trap::GeneratorConfig config;
    config.method = ::trap::trap::GenerationMethod::kRandom;
    config.constraint = ::trap::trap::PerturbationConstraint::kSharedTable;
    config.epsilon = 5;
    config.seed = options.seed ^ 0x9e;
    ::trap::trap::AdversarialWorkloadGenerator generator(vocab, config);
    TRAP_ASSIGN_OR_RETURN(workload::Workload perturbed,
                          generator.TryGenerate(w, phase.ctx()));
    phase.AddArg("queries", static_cast<int64_t>(perturbed.queries.size()));
  }
  return common::Status::Ok();
}

}  // namespace trap::proptest
