#include "campaign/fault.h"

#include <cstdlib>
#include <optional>

#include "common/fault.h"
#include "common/rng.h"

namespace trap::campaign {

namespace {

// The common registry's site tags keep the draw streams of the three
// worker sites disjoint from each other and from the in-process sites.
common::FaultSite CommonSite(WorkerFault f) {
  switch (f) {
    case WorkerFault::kCrash:
      return common::FaultSite::kCampaignWorkerCrash;
    case WorkerFault::kHang:
      return common::FaultSite::kCampaignWorkerHang;
    case WorkerFault::kGarbageFrame:
      return common::FaultSite::kCampaignWorkerGarbageFrame;
  }
  return common::FaultSite::kCampaignWorkerCrash;
}

std::optional<WorkerFault> FromCommonSite(common::FaultSite site) {
  switch (site) {
    case common::FaultSite::kCampaignWorkerCrash:
      return WorkerFault::kCrash;
    case common::FaultSite::kCampaignWorkerHang:
      return WorkerFault::kHang;
    case common::FaultSite::kCampaignWorkerGarbageFrame:
      return WorkerFault::kGarbageFrame;
    default:
      return std::nullopt;
  }
}

}  // namespace

const char* WorkerFaultName(WorkerFault f) {
  return common::FaultSiteName(CommonSite(f));
}

common::StatusOr<WorkerFaultPlan> ParseWorkerFaultSpec(std::string_view spec,
                                                       std::uint64_t seed) {
  std::string error;
  std::optional<common::FaultSpec> parsed =
      common::ParseFaultSpec(spec, seed, &error);
  if (!parsed.has_value()) {
    return common::Status::InvalidArgument("campaign fault spec: " + error);
  }
  WorkerFaultPlan plan;
  plan.seed = seed;
  for (const common::FaultSiteConfig& cfg : parsed->sites) {
    std::optional<WorkerFault> f = FromCommonSite(cfg.site);
    if (!f.has_value()) {
      return common::Status::InvalidArgument(
          std::string("not a process-level site: ") +
          common::FaultSiteName(cfg.site));
    }
    if (cfg.limit >= 0) {
      return common::Status::InvalidArgument(
          "@limit is not supported for worker faults (draws must stay pure "
          "functions of the work item)");
    }
    plan.probability[static_cast<int>(*f)] = cfg.probability;
  }
  return plan;
}

common::StatusOr<WorkerFaultPlan> WorkerFaultPlanFromEnv() {
  const char* spec = std::getenv("TRAP_CAMPAIGN_FAULTS");
  if (spec == nullptr || *spec == '\0') return WorkerFaultPlan{};
  std::uint64_t seed = 0;
  if (const char* seed_env = std::getenv("TRAP_CAMPAIGN_FAULT_SEED");
      seed_env != nullptr && *seed_env != '\0') {
    char* end = nullptr;
    seed = std::strtoull(seed_env, &end, 10);
    if (end == nullptr || *end != '\0') {
      return common::Status::InvalidArgument(
          std::string("bad TRAP_CAMPAIGN_FAULT_SEED: ") + seed_env);
    }
  }
  return ParseWorkerFaultSpec(spec, seed);
}

bool WorkerFaultFires(const WorkerFaultPlan& plan, WorkerFault f,
                      std::uint64_t key) {
  const double p = plan.probability[static_cast<int>(f)];
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t tag =
      static_cast<std::uint64_t>(CommonSite(f)) + 1;
  const std::uint64_t h =
      common::HashCombine(plan.seed, common::HashCombine(tag, key));
  return common::HashToUnit(h) < p;
}

}  // namespace trap::campaign
