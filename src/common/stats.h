#ifndef TRAP_COMMON_STATS_H_
#define TRAP_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace trap::common {

// Small numeric helpers shared across modules.

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

inline double StdDev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

// Pearson correlation; returns 0 when either side is constant.
inline double PearsonCorrelation(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  TRAP_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

// Clamps `x` into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

// Returns the q-quantile (q in [0, 1]) of a copy of `xs`.
inline double Quantile(std::vector<double> xs, double q) {
  TRAP_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  double pos = Clamp(q, 0.0, 1.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace trap::common

#endif  // TRAP_COMMON_STATS_H_
