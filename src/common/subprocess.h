#ifndef TRAP_COMMON_SUBPROCESS_H_
#define TRAP_COMMON_SUBPROCESS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace trap::common {

// A spawned child process with pipes to its stdin/stdout (stderr passes
// through to the parent's, so worker diagnostics stay visible). Plain POSIX
// fork/exec -- the campaign coordinator owns the lifecycle: spawn, exchange
// frames, and on any protocol violation Kill + Reap unconditionally.
struct Subprocess {
  int pid = -1;
  int stdin_fd = -1;   // write end: parent -> child stdin
  int stdout_fd = -1;  // read end: child stdout -> parent

  bool running() const { return pid > 0; }
};

// Spawns argv[0] with the remaining argv entries as arguments. The child's
// exec failure surfaces as exit code 127 (observed via Reap), matching
// shell convention.
StatusOr<Subprocess> SpawnWithPipes(const std::vector<std::string>& argv);

// Closes the parent's pipe ends (idempotent). Closing stdin is also the
// polite shutdown signal: a well-behaved worker exits on EOF.
void ClosePipes(Subprocess* p);

// SIGKILL; a no-op once reaped. Does not close pipes or wait.
void Kill(Subprocess* p);

// Non-blocking reap. Returns true once the child is gone, with *code set to
// the exit code, or -signo when it died on a signal. After true, pid is -1.
bool TryReap(Subprocess* p, int* code);

// Blocking reap (call after Kill or stdin-EOF; always terminates).
int Reap(Subprocess* p);

}  // namespace trap::common

#endif  // TRAP_COMMON_SUBPROCESS_H_
