# Empty dependencies file for retail_drift.
# This may be replaced when dependencies are built.
