#include "lint/index.h"

#include <cctype>
#include <cstddef>

namespace trap::lint {

namespace {

const Token& At(const SourceFile& f, size_t i) {
  static const Token kNone{TokKind::kPunct, "", 0};
  return i < f.tokens.size() ? f.tokens[i] : kNone;
}

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdentifier; }

// Extracts the include string from a directive token like
// `#include "engine/what_if.h"`. Returns false for system includes and
// non-include directives.
bool QuotedInclude(const std::string& directive, std::string* target) {
  size_t at = directive.find_first_not_of(" \t", 1);  // past '#'
  if (at == std::string::npos) return false;
  if (directive.compare(at, 7, "include") != 0) return false;
  size_t open = directive.find('"', at + 7);
  if (open == std::string::npos) return false;
  size_t close = directive.find('"', open + 1);
  if (close == std::string::npos) return false;
  *target = directive.substr(open + 1, close - open - 1);
  return !target->empty();
}

// Steps past the balanced `<...>` starting at the `<` at index i; returns
// the index one past the matching `>`, or i when the angles never close
// (the lexer found something the indexer cannot follow).
size_t SkipAngles(const SourceFile& f, size_t i) {
  int depth = 0;
  for (size_t j = i; j < f.tokens.size(); ++j) {
    const std::string& t = At(f, j).text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return j + 1;
    }
    // A ';' or '{' at angle depth means this was a comparison, not a
    // template argument list.
    if (t == ";" || t == "{") return i;
  }
  return i;
}

}  // namespace

FileIndex IndexFile(const SourceFile& f) {
  FileIndex out;
  out.path = f.path;
  for (size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.kind == TokKind::kPreprocessor) {
      std::string target;
      if (QuotedInclude(t.text, &target)) {
        out.includes.push_back(IncludeEdge{target, t.line});
      }
      continue;
    }
    if (!IsIdent(t)) continue;
    ReturnKind kind = ReturnKind::kOther;
    size_t after = 0;  // first token past the return type
    if (t.text == "Status" && At(f, i + 1).text != "<") {
      kind = ReturnKind::kStatus;
      after = i + 1;
    } else if (t.text == "StatusOr" && At(f, i + 1).text == "<") {
      size_t past = SkipAngles(f, i + 1);
      if (past == i + 1) continue;  // unbalanced; not a declaration
      kind = ReturnKind::kStatusOr;
      after = past;
    } else {
      continue;
    }
    // `Status` used as a qualifier (Status::Ok) or constructed inline
    // (Status(code, msg)) is not a return type.
    if (At(f, after).text == "::" || At(f, after).text == "(") continue;
    // Walk the declarator: identifier (:: identifier)* then '('. Anything
    // else (a reference return `Status& name`, a variable `Status s = ...`)
    // is skipped -- discarding a reference accessor is not this rule's
    // target, and staying narrow keeps the index free of false functions.
    size_t j = after;
    if (!IsIdent(At(f, j))) continue;
    while (IsIdent(At(f, j)) && At(f, j + 1).text == "::" &&
           IsIdent(At(f, j + 2))) {
      j += 2;
    }
    if (!IsIdent(At(f, j)) || At(f, j + 1).text != "(") continue;
    out.functions.push_back(FunctionDecl{At(f, j).text, kind, At(f, j).line});
  }
  return out;
}

void ProjectIndex::Add(const SourceFile& f) {
  FileIndex idx = IndexFile(f);
  for (const FunctionDecl& fn : idx.functions) {
    auto it = returns_.find(fn.name);
    if (it == returns_.end()) {
      returns_.emplace(fn.name, fn.kind);
    } else if (it->second != fn.kind) {
      it->second = ReturnKind::kOther;  // conflicting overloads: stand down
    }
  }
  files_[idx.path] = std::move(idx);
}

std::string ProjectIndex::Resolve(const std::string& from,
                                  const std::string& target) const {
  if (files_.count(target) != 0) return target;
  size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    std::string sibling = from.substr(0, slash + 1) + target;
    if (files_.count(sibling) != 0) return sibling;
  }
  static const char* kRoots[] = {"src/", "tools/", "bench/", "tests/",
                                 "examples/"};
  for (const char* root : kRoots) {
    std::string candidate = root + target;
    if (files_.count(candidate) != 0) return candidate;
  }
  return "";
}

ReturnKind ProjectIndex::ReturnKindOf(const std::string& name) const {
  auto it = returns_.find(name);
  return it == returns_.end() ? ReturnKind::kOther : it->second;
}

std::string ModuleOf(const std::string& path) {
  size_t first = path.find('/');
  if (first == std::string::npos) return "";
  std::string top = path.substr(0, first);
  if (top != "src") return top;
  size_t second = path.find('/', first + 1);
  if (second == std::string::npos) return top;
  return path.substr(first + 1, second - first - 1);
}

}  // namespace trap::lint
