// Fault-tolerance runtime tests: the Status taxonomy, deterministic step
// budgets, the fault-site registry, retry-with-backoff, and graceful
// advisor degradation. The table-driven cases arm each site at p=1.0 and
// assert the exact Status code, retry count, and FailureRecord the runtime
// must produce; the determinism tests assert the whole trajectory is
// bit-identical across runs and thread-pool sizes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "advisor/evaluation.h"
#include "advisor/registry.h"
#include "catalog/datasets.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/what_if.h"
#include "sql/vocabulary.h"
#include "testing/fault_campaign.h"
#include "trap/perturber.h"
#include "workload/generator.h"

namespace trap {
namespace {

using common::EvalContext;
using common::FaultSite;
using common::ScopedFaultSpec;
using common::Status;
using common::StatusCode;
using common::StatusOr;

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, OkAndErrorBasics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  Status err = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(err.message(), "budget spent");
  EXPECT_EQ(err.ToString(), "DEADLINE_EXCEEDED: budget spent");
  EXPECT_EQ(ok.ToString(), "OK");
  EXPECT_NE(ok, err);
  EXPECT_EQ(err, Status::DeadlineExceeded("budget spent"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(common::StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(common::StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(common::StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(common::StatusCodeName(StatusCode::kFaultInjected),
               "FAULT_INJECTED");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UsesMacros(int v, int* out) {
  TRAP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  TRAP_RETURN_IF_ERROR(Status::Ok());
  *out = parsed * 2;
  return Status::Ok();
}

TEST(StatusTest, StatusOrAndMacros) {
  StatusOr<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);
  StatusOr<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusOr<int>(Status::Internal("x")).value_or(7), 7);

  int out = 0;
  EXPECT_TRUE(UsesMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UsesMacros(0, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// CancelToken / EvalContext
// ---------------------------------------------------------------------------

TEST(DeadlineTest, StepBudgetExpiresDeterministically) {
  common::CancelToken token(3);
  EXPECT_TRUE(token.Charge());
  EXPECT_TRUE(token.Charge(2));
  EXPECT_FALSE(token.Charge());  // 4 > 3
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, CancellationWinsOverBudget) {
  common::CancelToken token(100);
  token.Cancel();
  EXPECT_FALSE(token.Charge());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, DefaultContextNeverExpires) {
  EvalContext ctx;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(ctx.CheckContinue().ok());
}

TEST(DeadlineTest, WithAttemptChangesSaltDeterministically) {
  EvalContext ctx;
  ctx.fault_salt = 5;
  EXPECT_NE(ctx.WithAttempt(1).fault_salt, ctx.WithAttempt(2).fault_salt);
  EXPECT_EQ(ctx.WithAttempt(3).fault_salt, ctx.WithAttempt(3).fault_salt);
}

// ---------------------------------------------------------------------------
// Fault spec parsing / registry
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesSitesProbabilitiesAndLimits) {
  std::string error;
  std::optional<common::FaultSpec> spec = common::ParseFaultSpec(
      "engine.whatif.cost_error@p=0.25,advisor.recommend.fail@limit=2", 9,
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->seed, 9u);
  ASSERT_EQ(spec->sites.size(), 2u);
  EXPECT_EQ(spec->sites[0].site, FaultSite::kWhatIfCostError);
  EXPECT_DOUBLE_EQ(spec->sites[0].probability, 0.25);
  EXPECT_EQ(spec->sites[1].site, FaultSite::kAdvisorRecommendFail);
  EXPECT_EQ(spec->sites[1].limit, 2);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(common::ParseFaultSpec("no.such.site", 0, &error).has_value());
  EXPECT_FALSE(
      common::ParseFaultSpec("engine.whatif.timeout@p=2.5", 0, &error)
          .has_value());
  EXPECT_FALSE(
      common::ParseFaultSpec("engine.whatif.timeout@bogus=1", 0, &error)
          .has_value());
}

TEST(FaultRegistryTest, DrawsAreDeterministicAndSeedSensitive) {
  std::vector<bool> run1, run2;
  {
    ScopedFaultSpec scoped("engine.whatif.cost_error@p=0.5", 11);
    for (uint64_t key = 0; key < 64; ++key) {
      run1.push_back(common::FaultShouldFire(FaultSite::kWhatIfCostError, key));
    }
  }
  {
    ScopedFaultSpec scoped("engine.whatif.cost_error@p=0.5", 11);
    for (uint64_t key = 0; key < 64; ++key) {
      run2.push_back(common::FaultShouldFire(FaultSite::kWhatIfCostError, key));
    }
  }
  EXPECT_EQ(run1, run2);
  int fired = 0;
  for (bool b : run1) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
  {
    ScopedFaultSpec scoped("engine.whatif.cost_error@p=0.5", 12);
    std::vector<bool> other_seed;
    for (uint64_t key = 0; key < 64; ++key) {
      other_seed.push_back(
          common::FaultShouldFire(FaultSite::kWhatIfCostError, key));
    }
    EXPECT_NE(run1, other_seed);
  }
}

TEST(FaultRegistryTest, LimitCapsFirings) {
  ScopedFaultSpec scoped("advisor.recommend.fail@limit=2", 0);
  int fired = 0;
  for (uint64_t key = 0; key < 10; ++key) {
    fired += common::FaultShouldFire(FaultSite::kAdvisorRecommendFail, key);
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(common::FaultRegistry::Global().hits(
                FaultSite::kAdvisorRecommendFail),
            2);
}

// ---------------------------------------------------------------------------
// Table-driven per-site degradation
// ---------------------------------------------------------------------------

struct FaultEnv {
  FaultEnv()
      : schema(catalog::MakeTpcH()),
        vocab(schema, 8),
        optimizer(schema),
        constraint(advisor::TuningConstraint::IndexCount(
            3, schema.DataSizeBytes() / 2)) {
    workload::GeneratorOptions gopt;
    gopt.max_tables = 2;
    gopt.max_filters = 2;
    workload::QueryGenerator gen(vocab, gopt, 0x5eed);
    std::vector<sql::Query> pool = gen.GeneratePool(12);
    common::Rng rng(0x5eed ^ 0x77);
    w = workload::SampleWorkload(pool, 4, rng);
  }

  catalog::Schema schema;
  sql::Vocabulary vocab;
  engine::WhatIfOptimizer optimizer;
  advisor::TuningConstraint constraint;
  workload::Workload w;
};

struct SiteCase {
  const char* spec;
  StatusCode expected_code;
  int expected_attempts;  // -1 = don't care
};

class FaultSiteDegradationTest : public ::testing::TestWithParam<SiteCase> {};

TEST_P(FaultSiteDegradationTest, DegradesWithExpectedStatusAndRetries) {
  const SiteCase& param = GetParam();
  FaultEnv env;
  ScopedFaultSpec scoped(param.spec, 7);
  std::unique_ptr<advisor::IndexAdvisor> adv =
      *advisor::MakeAdvisor("AutoAdmin", env.optimizer);
  common::CancelToken token(200000);
  EvalContext ctx;
  ctx.cancel = &token;
  ctx.fault_salt = 0x11;
  advisor::RecommendOutcome outcome = advisor::RecommendWithRetry(
      *adv, env.w, env.constraint, ctx, advisor::RetryPolicy{});
  EXPECT_EQ(outcome.status.code(), param.expected_code)
      << outcome.status.ToString();
  EXPECT_TRUE(outcome.degraded);
  EXPECT_TRUE(outcome.config.indexes().empty());
  if (param.expected_attempts >= 0) {
    EXPECT_EQ(outcome.attempts, param.expected_attempts);
  }
  advisor::FailureRecord record = advisor::MakeFailureRecord("AutoAdmin",
                                                             outcome);
  EXPECT_EQ(record.advisor, "AutoAdmin");
  EXPECT_EQ(record.code, outcome.status.code());
  EXPECT_EQ(record.attempts, outcome.attempts);
  EXPECT_TRUE(record.degraded);
  if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
    // Deadline statuses come straight from the token or the injected
    // timeout; the site name is recorded only for injected-fault messages.
    EXPECT_TRUE(record.site.empty() || record.site.rfind("engine.", 0) == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSiteDegradationTest,
    ::testing::Values(
        // A p=1 cost error fails every attempt; the retry loop exhausts.
        SiteCase{"engine.whatif.cost_error@p=1", StatusCode::kResourceExhausted,
                 3},
        // Injected timeouts are never retried: the budget is gone.
        SiteCase{"engine.whatif.timeout@p=1", StatusCode::kDeadlineExceeded, 1},
        // Entry-point failure is retryable and exhausts at p=1.
        SiteCase{"advisor.recommend.fail@p=1", StatusCode::kResourceExhausted,
                 3},
        // A hang consumes the whole step budget -> kDeadlineExceeded.
        SiteCase{"advisor.recommend.hang@p=1", StatusCode::kDeadlineExceeded,
                 1}),
    [](const ::testing::TestParamInfo<SiteCase>& site) {
      // "engine.whatif.cost_error@p=1" -> "engine_whatif_cost_error"
      std::string name(site.param.spec);
      name.resize(name.find('@'));
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

TEST(FaultSiteTest, FailureRecordNamesTheInjectedSite) {
  FaultEnv env;
  ScopedFaultSpec scoped("advisor.recommend.fail@p=1", 7);
  std::unique_ptr<advisor::IndexAdvisor> adv =
      *advisor::MakeAdvisor("Extend", env.optimizer);
  EvalContext ctx;
  advisor::RecommendOutcome outcome = advisor::RecommendWithRetry(
      *adv, env.w, env.constraint, ctx, advisor::RetryPolicy{});
  advisor::FailureRecord record = advisor::MakeFailureRecord("Extend", outcome);
  EXPECT_EQ(record.site, "advisor.recommend.fail");
  EXPECT_EQ(record.code, StatusCode::kResourceExhausted);
}

TEST(FaultSiteTest, CachePoisonSelfHealsToCorrectCosts) {
  FaultEnv env;
  engine::IndexConfig config;
  double clean = env.optimizer.WorkloadCost(env.w, config);
  engine::WhatIfOptimizer poisoned(env.schema);
  ScopedFaultSpec scoped("cache.shard.poison@p=1", 7);
  double first = poisoned.WorkloadCost(env.w, config);
  double second = poisoned.WorkloadCost(env.w, config);  // served from cache
  EXPECT_DOUBLE_EQ(first, clean);
  EXPECT_DOUBLE_EQ(second, clean);
  EXPECT_GT(poisoned.num_integrity_recoveries(), 0);
}

TEST(FaultSiteTest, LegacyRecommendDegradesToEmptyInsteadOfAborting) {
  FaultEnv env;
  ScopedFaultSpec scoped("advisor.recommend.fail@p=1", 7);
  std::unique_ptr<advisor::IndexAdvisor> adv =
      *advisor::MakeAdvisor("Drop", env.optimizer);
  engine::IndexConfig config = adv->Recommend(env.w, env.constraint);
  EXPECT_TRUE(config.indexes().empty());
}

TEST(FaultSiteTest, PerturberDegradesFiredQueriesToOriginals) {
  FaultEnv env;
  ::trap::trap::GeneratorConfig config;
  config.method = ::trap::trap::GenerationMethod::kRandom;
  config.seed = 0xace;
  ::trap::trap::AdversarialWorkloadGenerator generator(env.vocab, config);
  ScopedFaultSpec scoped("perturber.invalid_tree@p=1", 7);
  StatusOr<workload::Workload> perturbed = generator.TryGenerate(env.w);
  ASSERT_TRUE(perturbed.ok()) << perturbed.status().ToString();
  ASSERT_EQ(perturbed->queries.size(), env.w.queries.size());
  EXPECT_EQ(generator.num_degraded_queries(),
            static_cast<int64_t>(env.w.queries.size()));
  for (size_t i = 0; i < env.w.queries.size(); ++i) {
    EXPECT_EQ(sql::Fingerprint(perturbed->queries[i].query),
              sql::Fingerprint(env.w.queries[i].query));
  }
}

TEST(FaultSiteTest, TryIndexUtilityRecordsFailuresAndKeepsRunning) {
  FaultEnv env;
  engine::TrueCostModel truth(env.schema);
  advisor::RobustnessEvaluator evaluator(env.optimizer, truth);
  ScopedFaultSpec scoped("advisor.recommend.fail@p=1", 7);
  std::unique_ptr<advisor::IndexAdvisor> adv =
      *advisor::MakeAdvisor("AutoAdmin", env.optimizer);
  std::vector<advisor::FailureRecord> failures;
  EvalContext ctx;
  StatusOr<double> utility = evaluator.TryIndexUtility(
      *adv, nullptr, env.w, env.constraint, ctx, advisor::RetryPolicy{},
      &failures);
  ASSERT_TRUE(utility.ok()) << utility.status().ToString();
  // Degraded advisor vs empty baseline: utility collapses to zero, and the
  // failure is recorded instead of crashing the evaluation.
  EXPECT_DOUBLE_EQ(*utility, 0.0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].site, "advisor.recommend.fail");
  EXPECT_TRUE(failures[0].degraded);
}

// ---------------------------------------------------------------------------
// Determinism of the whole trajectory
// ---------------------------------------------------------------------------

std::vector<advisor::FailureRecord> RunTrajectory(common::ThreadPool* pool) {
  FaultEnv env;
  ScopedFaultSpec scoped(
      "engine.whatif.cost_error@p=0.02,advisor.recommend.fail@p=0.3", 21);
  engine::TrueCostModel truth(env.schema);
  advisor::RobustnessEvaluator evaluator(env.optimizer, truth);
  std::vector<advisor::FailureRecord> failures;
  for (const char* name : {"Extend", "AutoAdmin", "Drop"}) {
    std::unique_ptr<advisor::IndexAdvisor> adv =
        name == std::string("Extend")  ? *advisor::MakeAdvisor("Extend", env.optimizer)
        : name == std::string("AutoAdmin")
            ? *advisor::MakeAdvisor("AutoAdmin", env.optimizer)
            : *advisor::MakeAdvisor("Drop", env.optimizer);
    common::CancelToken token(200000);
    EvalContext ctx;
    ctx.cancel = &token;
    ctx.fault_salt = 0x42;
    advisor::RecommendOutcome outcome = advisor::RecommendWithRetry(
        *adv, env.w, env.constraint, ctx, advisor::RetryPolicy{});
    if (!outcome.status.ok()) {
      failures.push_back(advisor::MakeFailureRecord(name, outcome));
    }
  }
  (void)pool;
  return failures;
}

bool SameRecords(const std::vector<advisor::FailureRecord>& a,
                 const std::vector<advisor::FailureRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].advisor != b[i].advisor || a[i].site != b[i].site ||
        a[i].code != b[i].code || a[i].message != b[i].message ||
        a[i].attempts != b[i].attempts || a[i].degraded != b[i].degraded) {
      return false;
    }
  }
  return true;
}

TEST(FaultDeterminismTest, FailureRecordsIdenticalAcrossRunsAndThreadCounts) {
  std::vector<advisor::FailureRecord> serial_run = RunTrajectory(nullptr);
  std::vector<advisor::FailureRecord> repeat = RunTrajectory(nullptr);
  EXPECT_TRUE(SameRecords(serial_run, repeat));
  // The draws are keyed on fingerprints, not schedules, so the records do
  // not depend on the pool the what-if sweeps run on.
  common::ThreadPool pool1(1);
  common::ThreadPool pool8(8);
  std::vector<advisor::FailureRecord> t1 = RunTrajectory(&pool1);
  std::vector<advisor::FailureRecord> t8 = RunTrajectory(&pool8);
  EXPECT_TRUE(SameRecords(serial_run, t1));
  EXPECT_TRUE(SameRecords(serial_run, t8));
}

TEST(FaultDeterminismTest, CampaignDigestStableAcrossRuns) {
  proptest::FaultCampaignOptions options;
  options.workloads = 1;
  options.probabilities = {1.0};
  proptest::CampaignResult a = proptest::RunFaultCampaign(options, nullptr);
  proptest::CampaignResult b = proptest::RunFaultCampaign(options, nullptr);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.cases.size(), b.cases.size());
}

TEST(FaultDeterminismTest, BackoffIsSeededAndReproducible) {
  advisor::RetryPolicy policy;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(policy.BackoffSteps(attempt), policy.BackoffSteps(attempt));
  }
  EXPECT_GE(policy.BackoffSteps(2), policy.BackoffSteps(1) / 2 * 2);
  advisor::RetryPolicy other = policy;
  other.seed ^= 1;
  bool any_different = false;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    any_different |= policy.BackoffSteps(attempt) != other.BackoffSteps(attempt);
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace trap
