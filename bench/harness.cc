#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "advisor/registry.h"
#include "common/file_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace trap::bench {

namespace tc = ::trap::trap;

BenchEnv::BenchEnv(catalog::Schema schema_in, uint64_t seed, int pool_size,
                   int num_training, int num_tests, int workload_size)
    : schema(std::move(schema_in)),
      vocab(schema, 8),
      optimizer(schema),
      truth(schema),
      utility(optimizer, truth),
      evaluator(optimizer, truth) {
  workload::GeneratorOptions gopt;
  gopt.max_tables = 3;
  gopt.max_filters = 3;
  workload::QueryGenerator gen(vocab, gopt, seed);
  pool = gen.GeneratePool(pool_size);
  common::Rng rng(seed ^ 0x77);
  for (int i = 0; i < num_training; ++i) {
    training.push_back(workload::SampleWorkload(pool, workload_size, rng));
  }
  for (int i = 0; i < num_tests; ++i) {
    tests.push_back(workload::SampleWorkload(pool, workload_size, rng));
  }
  // Train the learned utility model on the pool under a few configurations.
  std::vector<engine::IndexConfig> configs;
  configs.emplace_back();
  for (int c = 0; c < 2; ++c) {
    engine::IndexConfig cfg;
    for (int i = 0; i < 5; ++i) {
      int g = static_cast<int>(rng.UniformInt(0, schema.num_columns() - 1));
      cfg.Add(engine::Index{{schema.ColumnFromGlobalIndex(g)}});
    }
    configs.push_back(cfg);
  }
  utility.Train(pool, configs);
}

advisor::TuningConstraint BenchEnv::StorageConstraint(double fraction) const {
  return advisor::TuningConstraint::Storage(
      static_cast<int64_t>(fraction * static_cast<double>(schema.DataSizeBytes())));
}

advisor::TuningConstraint BenchEnv::CountConstraint(int n) const {
  return advisor::TuningConstraint::IndexCount(n, schema.DataSizeBytes() / 2);
}

tc::GeneratorConfig BenchGeneratorConfig(tc::GenerationMethod method,
                                         tc::PerturbationConstraint constraint,
                                         int epsilon, uint64_t seed) {
  tc::GeneratorConfig config;
  config.method = method;
  config.constraint = constraint;
  config.epsilon = epsilon;
  config.seed = seed;
  config.agent.embed_dim = 32;
  config.agent.hidden_dim = 32;
  config.agent.transformer = nn::TransformerConfig{32, 2, 64, 1};
  config.pretrain.num_pairs = 120;
  config.pretrain.epochs = 2;
  config.pretrain.seed = seed ^ 0x1;
  config.rl.epochs = 10;
  config.rl.workloads_per_epoch = 4;
  config.rl.theta = 0.05;
  config.rl.seed = seed ^ 0x2;
  config.random_attempts = 5;
  return config;
}

bool IsNonSargable(BenchEnv& env, const workload::Workload& w,
                   const advisor::TuningConstraint& constraint, double theta) {
  // Reference advisors: if neither can reach theta utility, no index serves
  // this workload and it falls outside the assessment region (Sec. V-A).
  // The two references are independent (heuristics are stateless across
  // Recommend calls and the what-if optimizer is thread-safe), so both
  // utilities are evaluated in parallel.
  std::unique_ptr<advisor::IndexAdvisor> refs[] = {
      *advisor::MakeAdvisor("Extend", env.optimizer),
      *advisor::MakeAdvisor("AutoAdmin", env.optimizer)};
  double utilities[2] = {0.0, 0.0};
  common::ParallelFor(2, [&](size_t i) {
    utilities[i] = env.evaluator.IndexUtility(*refs[i], nullptr, w, constraint);
  });
  return utilities[0] < theta && utilities[1] < theta;
}

namespace {

// IndexUtility through the fault-tolerant path when failures are being
// collected into a report; the legacy exact path otherwise. A utility the
// evaluation could not produce at all (deadline/cancellation) scores 0 —
// the failure record carries the why.
double ReportedUtility(BenchEnv& env, advisor::IndexAdvisor& advisor,
                       advisor::IndexAdvisor* baseline,
                       const workload::Workload& w,
                       const advisor::TuningConstraint& constraint,
                       BenchReport* report) {
  if (report == nullptr) {
    return env.evaluator.IndexUtility(advisor, baseline, w, constraint);
  }
  std::vector<advisor::FailureRecord> failures;
  common::StatusOr<double> u = env.evaluator.TryIndexUtility(
      advisor, baseline, w, constraint, {}, {}, &failures);
  for (const advisor::FailureRecord& f : failures) {
    report->RecordFailure(f);
  }
  return std::move(u).value_or(0.0);
}

}  // namespace

AssessmentResult AssessRobustness(BenchEnv& env, advisor::IndexAdvisor* victim,
                                  advisor::IndexAdvisor* baseline,
                                  tc::GeneratorConfig config,
                                  const advisor::TuningConstraint& constraint,
                                  double theta, BenchReport* report) {
  tc::AdversarialWorkloadGenerator generator(env.vocab, config);
  generator.Fit(victim, baseline, &env.optimizer, &env.utility, env.pool,
                env.training, constraint);
  AssessmentResult result;
  double sum = 0.0;
  // Random's 5x generation budget means 5x more perturbed workloads enter
  // the assessment; trained methods emit one workload per test.
  int attempts = config.method == ::trap::trap::GenerationMethod::kRandom
                     ? config.random_attempts
                     : 1;
  for (const workload::Workload& w : env.tests) {
    double u = ReportedUtility(env, *victim, baseline, w, constraint, report);
    if (u <= theta) continue;  // Definition 3.3 requires u(W) > theta
    for (int attempt = 0; attempt < attempts; ++attempt) {
      workload::Workload perturbed = generator.Generate(w);
      if (IsNonSargable(env, perturbed, constraint, theta)) {
        ++result.filtered;
        continue;
      }
      double u_prime = ReportedUtility(env, *victim, baseline, perturbed,
                                       constraint, report);
      // IUDR = 1 - u'/u explodes when u is small; clamp per-workload values
      // so miniature-sample means are not dominated by one ratio blow-up.
      sum += common::Clamp(advisor::RobustnessEvaluator::Iudr(u, u_prime),
                           -1.0, 2.0);
      ++result.eligible;
    }
  }
  result.mean_iudr = result.eligible > 0 ? sum / result.eligible : 0.0;
  return result;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

BenchOptions ParseBenchOptions(int* argc, char** argv) {
  BenchOptions opt;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      opt.repeat = static_cast<int>(std::strtol(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--min-iters=", 0) == 0) {
      opt.min_iters =
          static_cast<int>(std::strtol(arg.c_str() + 12, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  opt.repeat = std::max(1, opt.repeat);
  opt.min_iters = std::max(1, opt.min_iters);
  return opt;
}

double MedianSeconds(const BenchOptions& opt, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(opt.repeat));
  for (int r = 0; r < opt.repeat; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < opt.min_iters; ++i) fn();
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    times.push_back(seconds / opt.min_iters);
  }
  std::sort(times.begin(), times.end());
  const size_t n = times.size();
  return n % 2 == 1 ? times[n / 2]
                    : 0.5 * (times[n / 2 - 1] + times[n / 2]);
}

void RecordWhatIfThroughput(BenchReport* report, const BenchOptions& opt) {
  // Fixed probe, independent of the calling bench: TPC-H, 64 generated
  // queries, one single-column candidate per schema column — the shape of
  // an advisor's first greedy round, costed cold.
  const catalog::Schema schema = catalog::MakeTpcH();
  sql::Vocabulary vocab(schema, 8);
  workload::QueryGenerator gen(vocab, workload::GeneratorOptions{}, /*seed=*/3);
  const std::vector<sql::Query> queries = gen.GeneratePool(64);
  engine::WhatIfOptimizer optimizer(schema);
  workload::Workload w;
  for (const sql::Query& q : queries) {
    w.queries.push_back(workload::WorkloadQuery{q, 1.0});
  }
  std::vector<engine::IndexConfig> configs;
  for (int g = 0; g < schema.num_columns(); ++g) {
    engine::IndexConfig cfg;
    cfg.Add(engine::Index{{schema.ColumnFromGlobalIndex(g)}});
    configs.push_back(cfg);
  }
  const double pairs =
      static_cast<double>(w.queries.size() * configs.size());
  double sink = 0.0;
  auto sweep = [&](common::ThreadPool* pool) {
    optimizer.ClearCache();  // cold cost cache every repeat
    common::EvalContext ctx;
    ctx.pool = pool;
    sink += optimizer.WorkloadCosts(w, configs, ctx)[0];
  };
  common::ThreadPool serial_pool(1);
  common::ThreadPool quad_pool(4);
  const double t1 = MedianSeconds(opt, [&] { sweep(&serial_pool); });
  const double t4 = MedianSeconds(opt, [&] { sweep(&quad_pool); });
  if (sink < 0.0) std::printf("impossible\n");  // keep the sweeps observable
  report->RecordMetric("whatif_pairs_per_sec", t1 > 0.0 ? pairs / t1 : 0.0);
  report->RecordMetric("speedup_4_vs_1", t4 > 0.0 ? t1 / t4 : 0.0);
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)),
      threads_(common::GlobalPool().num_threads()) {}

double BenchReport::TimePhase(const std::string& phase,
                              const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RecordPhase(phase, seconds);
  return seconds;
}

void BenchReport::RecordPhase(const std::string& phase, double seconds) {
  phases_.push_back(Phase{phase, seconds});
}

void BenchReport::RecordMetric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchReport::RecordFailure(const advisor::FailureRecord& failure) {
  failures_.push_back(failure);
}

namespace {

// Minimal JSON string escaping for failure messages (quotes, backslashes,
// control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string BenchReport::Write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << name_ << "\",\n";
  out << "  \"threads\": " << threads_ << ",\n";
  out << "  \"phases\": [";
  for (size_t i = 0; i < phases_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", phases_[i].seconds);
    out << "    {\"name\": \"" << phases_[i].name
        << "\", \"seconds\": " << buf << "}";
  }
  out << "\n  ],\n  \"metrics\": {";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", metrics_[i].second);
    out << "    \"" << metrics_[i].first << "\": " << buf;
  }
  // Observability block: every sample in the global registry at write time,
  // plus the digest over the deterministic subset. The digest is what
  // check.sh compares across TRAP_THREADS values — bit-identical schedules
  // must produce bit-identical digests.
  const std::vector<obs::MetricSample> samples =
      obs::GlobalSnapshotWithDerived();
  out << "\n  },\n  \"obs_metrics\": {";
  for (size_t i = 0; i < samples.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(samples[i].name)
        << "\": {\"value\": " << samples[i].value << ", \"deterministic\": "
        << (samples[i].deterministic ? "true" : "false") << "}";
  }
  char digest_buf[32];
  std::snprintf(digest_buf, sizeof digest_buf, "0x%016llx",
                static_cast<unsigned long long>(
                    obs::MetricRegistry::Digest(samples)));
  out << "\n  },\n  \"metrics_digest\": \"" << digest_buf << "\",\n";
  out << "  \"failures\": [";
  for (size_t i = 0; i < failures_.size(); ++i) {
    const advisor::FailureRecord& f = failures_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"advisor\": \"" << JsonEscape(f.advisor) << "\", \"site\": \""
        << JsonEscape(f.site) << "\", \"code\": \""
        << common::StatusCodeName(f.code) << "\", \"attempts\": " << f.attempts
        << ", \"degraded\": " << (f.degraded ? "true" : "false")
        << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (failures_.empty() ? "]\n}\n" : "\n  ]\n}\n");
  // Atomic publish (write .tmp, rename): a crash mid-write leaves only the
  // .tmp file, never a torn BENCH_*.json.
  if (!common::AtomicWriteFile(path, out.str()).ok()) return "";
  std::printf("[bench json] wrote %s (threads=%d)\n", path.c_str(), threads_);
  return path;
}

}  // namespace trap::bench
