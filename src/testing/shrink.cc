#include "testing/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace trap::proptest {

namespace {

// The cost model refuses disconnected join graphs, so table-dropping
// mutations must keep the remaining tables joined.
bool JoinGraphConnected(const sql::Query& q) {
  if (q.tables.size() <= 1) return true;
  std::vector<int> parent(q.tables.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto slot = [&](int table) {
    for (size_t i = 0; i < q.tables.size(); ++i) {
      if (q.tables[i] == table) return static_cast<int>(i);
    }
    return -1;
  };
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const sql::JoinPredicate& j : q.joins) {
    int a = slot(j.left.table);
    int b = slot(j.right.table);
    if (a < 0 || b < 0) return false;
    parent[find(a)] = find(b);
  }
  int root = find(0);
  for (size_t i = 1; i < parent.size(); ++i) {
    if (find(static_cast<int>(i)) != root) return false;
  }
  return true;
}

bool QueryOk(const sql::Query& q, const catalog::Schema& schema) {
  return JoinGraphConnected(q) && sql::ValidateQuery(q, schema);
}

// Commits `candidate` into `r` if every query is still engine-acceptable and
// the failure survives.
bool TryCommit(Reproducer* r, Reproducer&& candidate,
               const catalog::Schema& schema, const FailPredicate& pred,
               ShrinkStats* stats) {
  for (const workload::WorkloadQuery& wq : candidate.workload.queries) {
    if (!QueryOk(wq.query, schema)) return false;
  }
  if (!pred(candidate)) return false;
  *r = std::move(candidate);
  ++stats->accepted;
  return true;
}

// Removes table `t` from the query: the FROM entry, joins touching it, and
// every clause reference. Validity is checked by the caller.
void DropTable(sql::Query* q, int t) {
  std::erase(q->tables, t);
  std::erase_if(q->joins, [t](const sql::JoinPredicate& j) {
    return j.left.table == t || j.right.table == t;
  });
  std::erase_if(q->filters,
                [t](const sql::Predicate& p) { return p.column.table == t; });
  std::erase_if(q->select,
                [t](const sql::SelectItem& s) { return s.column.table == t; });
  std::erase_if(q->group_by,
                [t](catalog::ColumnId c) { return c.table == t; });
  std::erase_if(q->order_by,
                [t](catalog::ColumnId c) { return c.table == t; });
}

}  // namespace

ShrinkStats ShrinkReproducer(Reproducer* r, const catalog::Schema& schema,
                             const FailPredicate& still_fails) {
  constexpr int kMaxPasses = 32;
  ShrinkStats stats;
  bool changed = true;
  while (changed && stats.passes < kMaxPasses) {
    changed = false;
    ++stats.passes;

    // 1. Drop whole workload queries (keep at least one).
    for (int i = static_cast<int>(r->workload.queries.size()) - 1;
         i >= 0 && r->workload.queries.size() > 1; --i) {
      Reproducer c = *r;
      c.workload.queries.erase(c.workload.queries.begin() + i);
      changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
    }

    // 2. Per-query structural shrinks, largest reductions first.
    for (size_t qi = 0; qi < r->workload.queries.size(); ++qi) {
      const sql::Query& q = r->workload.queries[qi].query;
      // Drop a table (and everything referencing it).
      for (int i = static_cast<int>(q.tables.size()) - 1;
           i >= 0 && r->workload.queries[qi].query.tables.size() > 1; --i) {
        Reproducer c = *r;
        DropTable(&c.workload.queries[qi].query,
                  r->workload.queries[qi].query.tables[i]);
        changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
      }
      // Drop a filter predicate.
      for (int i = static_cast<int>(
               r->workload.queries[qi].query.filters.size()) - 1;
           i >= 0; --i) {
        Reproducer c = *r;
        sql::Query& cq = c.workload.queries[qi].query;
        cq.filters.erase(cq.filters.begin() + i);
        changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
      }
      // Drop a select item.
      for (int i = static_cast<int>(
               r->workload.queries[qi].query.select.size()) - 1;
           i >= 0 && r->workload.queries[qi].query.select.size() > 1; --i) {
        Reproducer c = *r;
        sql::Query& cq = c.workload.queries[qi].query;
        cq.select.erase(cq.select.begin() + i);
        changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
      }
      // Drop a GROUP BY column together with the bare select items it
      // covers (a bare item without its grouping column is invalid).
      for (int i = static_cast<int>(
               r->workload.queries[qi].query.group_by.size()) - 1;
           i >= 0; --i) {
        Reproducer c = *r;
        sql::Query& cq = c.workload.queries[qi].query;
        catalog::ColumnId col = cq.group_by[i];
        cq.group_by.erase(cq.group_by.begin() + i);
        std::erase_if(cq.select, [&](const sql::SelectItem& s) {
          return s.agg == sql::AggFunc::kNone && s.column == col &&
                 cq.select.size() > 1;
        });
        changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
      }
      // Drop an ORDER BY column.
      for (int i = static_cast<int>(
               r->workload.queries[qi].query.order_by.size()) - 1;
           i >= 0; --i) {
        Reproducer c = *r;
        sql::Query& cq = c.workload.queries[qi].query;
        cq.order_by.erase(cq.order_by.begin() + i);
        changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
      }
    }

    // 3. Drop base-configuration indexes, then trailing index columns.
    for (int i = r->config.size() - 1; i >= 0; --i) {
      Reproducer c = *r;
      engine::IndexConfig smaller;
      for (int k = 0; k < r->config.size(); ++k) {
        if (k != i) smaller.Add(r->config.indexes()[k]);
      }
      c.config = std::move(smaller);
      changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
    }
    for (int i = 0; i < r->config.size(); ++i) {
      while (r->config.indexes()[i].NumColumns() > 1) {
        Reproducer c = *r;
        engine::IndexConfig narrower;
        for (int k = 0; k < r->config.size(); ++k) {
          engine::Index idx = r->config.indexes()[k];
          if (k == i) idx.columns.pop_back();
          narrower.Add(idx);
        }
        c.config = std::move(narrower);
        if (!TryCommit(r, std::move(c), schema, still_fails, &stats)) break;
        changed = true;
      }
    }

    // 4. Drop extra indexes (keep one: the monotonicity oracles need a
    // non-trivial superset) and truncate their trailing columns.
    for (int i = static_cast<int>(r->extra.size()) - 1;
         i >= 0 && r->extra.size() > 1; --i) {
      Reproducer c = *r;
      c.extra.erase(c.extra.begin() + i);
      changed |= TryCommit(r, std::move(c), schema, still_fails, &stats);
    }
    for (size_t i = 0; i < r->extra.size(); ++i) {
      while (r->extra[i].NumColumns() > 1) {
        Reproducer c = *r;
        c.extra[i].columns.pop_back();
        if (!TryCommit(r, std::move(c), schema, still_fails, &stats)) break;
        changed = true;
      }
    }

    // 5. Tighten the perturbation budget.
    while (r->epsilon > 0) {
      Reproducer c = *r;
      --c.epsilon;
      if (!TryCommit(r, std::move(c), schema, still_fails, &stats)) break;
      changed = true;
    }
  }
  return stats;
}

}  // namespace trap::proptest
