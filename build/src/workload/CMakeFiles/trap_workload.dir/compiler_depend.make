# Empty compiler generated dependencies file for trap_workload.
# This may be replaced when dependencies are built.
