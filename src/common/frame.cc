#include "common/frame.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace trap::common {

namespace {

constexpr char kMagic[] = "TRAPF ";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
// Longest legal header: magic + digits of kMaxFramePayload + '\n'.
constexpr std::size_t kMaxHeader = kMagicLen + 20 + 1;

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  char header[kMaxHeader + 1];
  int n = std::snprintf(header, sizeof header, "TRAPF %zu\n", payload.size());
  std::string out;
  out.reserve(static_cast<std::size_t>(n) + payload.size());
  out.append(header, static_cast<std::size_t>(n));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::Append(const char* data, std::size_t n) {
  if (malformed_) return;  // sticky; no point buffering a corrupt stream
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::Next(std::string* payload,
                                        std::string* error) {
  auto fail = [&](const char* why) {
    malformed_ = true;
    malformed_error_ = why;
    if (error != nullptr) *error = why;
    return Result::kMalformed;
  };
  if (malformed_) {
    if (error != nullptr) *error = malformed_error_;
    return Result::kMalformed;
  }
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
    return Result::kNeedMore;
  }
  const std::size_t avail = buf_.size() - pos_;
  // Reject a bad magic as soon as enough bytes exist to rule it out.
  const std::size_t check = avail < kMagicLen ? avail : kMagicLen;
  if (std::memcmp(buf_.data() + pos_, kMagic, check) != 0) {
    return fail("frame magic mismatch");
  }
  const std::size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    if (avail > kMaxHeader) return fail("frame header overlong");
    return Result::kNeedMore;
  }
  if (nl - pos_ <= kMagicLen) return fail("frame header missing length");
  std::size_t len = 0;
  for (std::size_t i = pos_ + kMagicLen; i < nl; ++i) {
    const char c = buf_[i];
    if (c < '0' || c > '9') return fail("frame length not numeric");
    len = len * 10 + static_cast<std::size_t>(c - '0');
    if (len > kMaxFramePayload) return fail("frame length exceeds maximum");
  }
  const std::size_t body = nl + 1;
  if (buf_.size() - body < len) return Result::kNeedMore;
  payload->assign(buf_, body, len);
  pos_ = body + len;
  // Compact once the consumed prefix dominates, so a long-lived stream does
  // not grow its buffer without bound.
  if (pos_ > (std::size_t{1} << 16) && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kFrame;
}

Status ReadFrame(std::FILE* in, FrameDecoder* decoder, std::string* payload) {
  for (;;) {
    std::string error;
    switch (decoder->Next(payload, &error)) {
      case FrameDecoder::Result::kFrame:
        return Status::Ok();
      case FrameDecoder::Result::kMalformed:
        return Status::Internal("malformed frame: " + error);
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    // A raw read(), not fread(): stdio would block trying to fill the whole
    // buffer, but a pipe delivers frames in short bursts and the sender is
    // waiting for our reply.
    char buf[1 << 12];
    ssize_t n;
    do {
      n = read(fileno(in), buf, sizeof buf);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return Status::Internal(std::string("frame read: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (decoder->buffered() > 0) {
        return Status::Internal("frame stream truncated mid-frame");
      }
      return Status::Unavailable("frame stream ended");
    }
    decoder->Append(buf, static_cast<std::size_t>(n));
  }
}

Status WriteFrame(std::FILE* out, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  if (std::fwrite(frame.data(), 1, frame.size(), out) != frame.size() ||
      std::fflush(out) != 0) {
    return Status::Unavailable("frame write failed (peer gone?)");
  }
  return Status::Ok();
}

}  // namespace trap::common
