file(REMOVE_RECURSE
  "CMakeFiles/exploratory_analyst.dir/exploratory_analyst.cpp.o"
  "CMakeFiles/exploratory_analyst.dir/exploratory_analyst.cpp.o.d"
  "exploratory_analyst"
  "exploratory_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exploratory_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
