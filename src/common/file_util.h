#ifndef TRAP_COMMON_FILE_UTIL_H_
#define TRAP_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace trap::common {

// Atomically replaces `path` with `content`: writes `path + ".tmp"`, flushes
// it (fsync when `sync_to_disk` is set, for files that must survive a crash
// of the whole machine, e.g. the campaign checkpoint journal), then
// publishes with rename(2). A crash at any point leaves either the old file
// or the new one -- never a torn mixture -- because rename within a
// filesystem is atomic. The stale .tmp from an interrupted write is
// overwritten by the next call.
Status AtomicWriteFile(const std::string& path, std::string_view content,
                       bool sync_to_disk = false);

// Reads the whole file. kUnavailable when it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace trap::common

#endif  // TRAP_COMMON_FILE_UTIL_H_
