#include "common/thread_pool.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/check.h"
#include "common/deadline.h"

namespace trap::common {

namespace {

// Set while a thread (worker or submitting caller) is executing iterations
// of a batch; nested ParallelFor calls consult it to degrade to serial.
thread_local bool t_in_parallel_loop = false;

int ThreadsFromEnvironment() {
  int n = 0;
  if (const char* env = std::getenv("TRAP_THREADS"); env != nullptr) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    // A malformed or out-of-range TRAP_THREADS aborts loudly: silently
    // falling back to hardware_concurrency() would make e.g. a TSan run
    // pinned to 4 threads quietly use 64.
    TRAP_CHECK_MSG(end != env && *end == '\0' && errno == 0,
                   "TRAP_THREADS must be a decimal integer");
    TRAP_CHECK_MSG(parsed >= 0 && parsed <= 256,
                   "TRAP_THREADS must be in [0, 256] (0 = one per core)");
    n = static_cast<int>(parsed);
  }
  if (n == 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (n < 1) n = 1;
  if (n > 256) n = 256;
  return n;
}

}  // namespace

// Shared state of one ParallelFor invocation. Workers and the caller claim
// iterations through `next`; the last finished iteration flips `done`.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};       // next unclaimed iteration
  std::atomic<size_t> remaining{0};  // iterations not yet finished
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  std::mutex error_mu;
  std::exception_ptr error;  // first exception thrown by fn
};

ThreadPool::ThreadPool(int num_threads) {
  TRAP_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread joins on destruction.
}

bool ThreadPool::InParallelLoop() { return t_in_parallel_loop; }

void ThreadPool::RunBatch(Batch& batch) {
  bool was_in_loop = t_in_parallel_loop;
  t_in_parallel_loop = true;
  for (size_t i = batch.next.fetch_add(1); i < batch.n;
       i = batch.next.fetch_add(1)) {
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mu);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(batch.done_mu);
      batch.done = true;
      batch.done_cv.notify_all();
    }
  }
  t_in_parallel_loop = was_in_loop;
}

void ThreadPool::WorkerLoop(const std::stop_token& stop) {
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, stop, [this] { return batch_ != nullptr; });
      if (stop.stop_requested()) return;
      batch = batch_;
    }
    RunBatch(*batch);
    // Wait for this batch to be retired before polling again, so a drained
    // batch is not rerun in a hot loop.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, stop, [this, &batch] { return batch_ != batch; });
    if (stop.stop_requested()) return;
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Serial paths: a pool without workers, a single item, or a nested call
  // (re-entering the pool while a batch is in flight could deadlock).
  if (workers_.empty() || n == 1 || t_in_parallel_loop) {
    bool was_in_loop = t_in_parallel_loop;
    t_in_parallel_loop = true;
    std::exception_ptr error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    t_in_parallel_loop = was_in_loop;
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mu_);
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
  }
  cv_.notify_all();
  RunBatch(*batch);
  {
    std::unique_lock<std::mutex> lock(batch->done_mu);
    batch->done_cv.wait(lock, [&] { return batch->done; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = nullptr;
  }
  cv_.notify_all();  // release workers parked on "batch retired"
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const CancelToken* cancel) {
  if (cancel == nullptr) {
    ParallelFor(n, fn);
    return;
  }
  // Fast-drain wrapper: iterations claimed after the token dies are skipped
  // without invoking fn. Skipped slots keep whatever the caller pre-filled
  // (a kCancelled Status), so every item stays accounted for.
  ParallelFor(n, [&fn, cancel](size_t i) {
    if (cancel->cancelled() || cancel->expired()) return;
    fn(i);
  });
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = new ThreadPool(ThreadsFromEnvironment());
  return *pool;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  GlobalPool().ParallelFor(n, fn);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const CancelToken* cancel) {
  GlobalPool().ParallelFor(n, fn, cancel);
}

}  // namespace trap::common
