#include "advisor/registry.h"

#include "advisor/remote.h"

namespace trap::advisor {

namespace {

SwirlOptions ResolveSwirl(const RegistryOptions& options) {
  SwirlOptions o = options.swirl;
  if (options.seed != 0) o.seed = options.seed ^ 0x51;
  if (options.rl_episodes > 0) o.episodes = options.rl_episodes;
  if (options.max_actions > 0) o.max_actions = options.max_actions;
  return o;
}

DqnOptions ResolveDqn(const DqnOptions& base, uint64_t salt,
                      const RegistryOptions& options) {
  DqnOptions o = base;
  if (options.seed != 0) o.seed = options.seed ^ salt;
  if (options.rl_episodes > 0) o.episodes = options.rl_episodes;
  if (options.max_actions > 0) o.max_actions = options.max_actions;
  return o;
}

MctsOptions ResolveMcts(const RegistryOptions& options) {
  MctsOptions o = options.mcts;
  if (options.seed != 0) o.seed = options.seed ^ 0x3c;
  if (options.mcts_iterations > 0) o.iterations = options.mcts_iterations;
  return o;
}

}  // namespace

common::StatusOr<std::unique_ptr<IndexAdvisor>> MakeAdvisor(
    std::string_view name, const engine::WhatIfOptimizer& optimizer,
    const RegistryOptions& options) {
  if (name == "Extend") return MakeExtend(optimizer, options.heuristic);
  if (name == "DB2Advis") return MakeDb2Advis(optimizer, options.heuristic);
  if (name == "AutoAdmin") return MakeAutoAdmin(optimizer, options.heuristic);
  if (name == "Drop") {
    HeuristicOptions drop_options = options.heuristic;
    if (options.drop_single_column) drop_options.multi_column = false;
    return MakeDrop(optimizer, drop_options);
  }
  if (name == "Relaxation") return MakeRelaxation(optimizer, options.heuristic);
  if (name == "DTA") return MakeDta(optimizer, options.heuristic);
  if (name == "SWIRL" || name == "DRLindex" || name == "DQN") {
    TRAP_ASSIGN_OR_RETURN(std::unique_ptr<LearningAdvisor> learner,
                          MakeLearningAdvisor(name, optimizer, options));
    return std::unique_ptr<IndexAdvisor>(std::move(learner));
  }
  if (name == "MCTS") return MakeMcts(optimizer, ResolveMcts(options));
  if (name == "Remote") {
    // Out-of-process proxy: recommendations are computed by the host
    // process named in options.remote.argv (never by `optimizer`, which is
    // unused here -- the remote host owns its own catalog + engine).
    if (options.remote.argv.empty()) {
      return common::Status::InvalidArgument(
          "Remote advisor requires RegistryOptions.remote.argv");
    }
    return std::unique_ptr<IndexAdvisor>(
        std::make_unique<RemoteAdvisor>(options.remote));
  }
  return common::Status::InvalidArgument("unknown advisor name: " +
                                         std::string(name));
}

common::StatusOr<std::unique_ptr<LearningAdvisor>> MakeLearningAdvisor(
    std::string_view name, const engine::WhatIfOptimizer& optimizer,
    const RegistryOptions& options) {
  if (name == "SWIRL") {
    return std::unique_ptr<LearningAdvisor>(
        std::make_unique<SwirlAdvisor>(optimizer, ResolveSwirl(options)));
  }
  if (name == "DRLindex") {
    return MakeDrlIndex(optimizer, ResolveDqn(options.drlindex, 0xd1, options));
  }
  if (name == "DQN") {
    return MakeDqnAdvisor(optimizer, ResolveDqn(options.dqn, 0xd2, options));
  }
  return common::Status::InvalidArgument("unknown learning advisor name: " +
                                         std::string(name));
}

const std::vector<std::string>& AllAdvisorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Extend",    "DB2Advis", "AutoAdmin", "Drop", "Relaxation",
      "DTA",       "SWIRL",    "DRLindex",  "DQN",  "MCTS"};
  return *names;
}

const std::vector<std::string>& HeuristicAdvisorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Extend", "DB2Advis", "AutoAdmin", "Drop", "Relaxation", "DTA"};
  return *names;
}

}  // namespace trap::advisor
