// Tests for the trap_lint analyzer (tools/lint). Each rule gets at least
// one known-violation fixture and one clean fixture; suppression and the
// mandatory-reason policy are exercised end to end through Lint().
//
// Fixture snippets are lexed under invented repo paths, since several rules
// scope by location (no-wall-clock fires only under src/, etc.).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lexer.h"
#include "lint/rules.h"

namespace trap::lint {
namespace {

std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& code) {
  return Lint(Lex(path, code));
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- Lexer ---------------------------------------------------------------

TEST(LexerTest, StripsCommentsAndTracksLines) {
  SourceFile f = Lex("src/a.cc",
                     "int a; // trailing\n"
                     "/* block\n   spanning */ int b;\n");
  ASSERT_EQ(f.tokens.size(), 6u);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].line, 1);
  EXPECT_EQ(f.tokens[3].text, "int");
  EXPECT_EQ(f.tokens[3].line, 3);  // block comment advanced the line count
}

TEST(LexerTest, StringAndCharLiteralsAreOpaque) {
  // Banned identifiers inside literals must not produce tokens the rules
  // can see.
  SourceFile f = Lex("src/a.cc",
                     "const char* s = \"atoi(std::mt19937)\";\n"
                     "char c = 'r';\n"
                     "const char* r = R\"(rand() sprintf)\";\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.kind == TokKind::kIdentifier ? t.text : "", "atoi");
    EXPECT_NE(t.kind == TokKind::kIdentifier ? t.text : "", "mt19937");
    EXPECT_NE(t.kind == TokKind::kIdentifier ? t.text : "", "rand");
  }
  EXPECT_TRUE(HasRule(LintSnippet("src/a.cc", "int x = atoi(s);\n"),
                      "banned-functions"))
      << "sanity: the identifier outside a literal does fire";
}

TEST(LexerTest, ParsesNolintMarkers) {
  SourceFile f = Lex("src/a.cc",
                     "foo();  // NOLINT(rule-a, rule-b): both are fine here\n"
                     "bar();  // NOLINT\n");
  ASSERT_EQ(f.suppressions.size(), 3u);
  EXPECT_EQ(f.suppressions[0].rule, "rule-a");
  EXPECT_TRUE(f.suppressions[0].has_reason);
  EXPECT_EQ(f.suppressions[1].rule, "rule-b");
  EXPECT_EQ(f.suppressions[2].rule, "*");
  EXPECT_FALSE(f.suppressions[2].has_reason);
  EXPECT_TRUE(IsSuppressed(f, "rule-a", 1));
  EXPECT_FALSE(IsSuppressed(f, "rule-c", 1));    // not in the marker's list
  EXPECT_TRUE(IsSuppressed(f, "anything", 2));   // wildcard
  EXPECT_FALSE(IsSuppressed(f, "rule-a", 3));    // no marker on that line
}

TEST(LexerTest, ProseMentionsOfNolintAreNotMarkers) {
  SourceFile f = Lex("src/a.cc",
                     "// The word NOLINT(foo) in prose is not a marker.\n");
  EXPECT_TRUE(f.suppressions.empty());
}

// --- no-unseeded-randomness ----------------------------------------------

TEST(RuleTest, UnseededRandomnessViolation) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/x.cc", "std::mt19937 gen(std::random_device{}());\n"),
      "no-unseeded-randomness"));
  EXPECT_TRUE(HasRule(LintSnippet("tests/x.cc", "int r = rand();\n"),
                      "no-unseeded-randomness"));
}

TEST(RuleTest, UnseededRandomnessClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc", "common::Rng rng(42); rng.Uniform();\n"),
      "no-unseeded-randomness"));
  // An unrelated identifier merely named rand is not a generator call.
  EXPECT_FALSE(HasRule(LintSnippet("src/x.cc", "double rand = 0.5;\n"),
                       "no-unseeded-randomness"));
  // The sanctioned wrapper itself may name the engine type.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/common/rng.h",
                  "#ifndef TRAP_COMMON_RNG_H_\n#define TRAP_COMMON_RNG_H_\n"
                  "std::mt19937_64 engine_;\n#endif\n"),
      "no-unseeded-randomness"));
}

// --- no-raw-thread -------------------------------------------------------

TEST(RuleTest, RawThreadViolation) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/x.cc", "std::thread t([] {}); t.join();\n"),
      "no-raw-thread"));
  EXPECT_TRUE(HasRule(LintSnippet("tests/x.cc", "std::jthread t(fn);\n"),
                      "no-raw-thread"));
}

TEST(RuleTest, RawThreadClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc", "common::ParallelFor(n, [&](size_t i) {});\n"),
      "no-raw-thread"));
  // Consulting the type without constructing a thread is allowed.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc",
                  "int n = std::thread::hardware_concurrency();\n"),
      "no-raw-thread"));
  // The pool implementation owns its raw threads.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/common/thread_pool.cc", "std::jthread w(loop);\n"),
      "no-raw-thread"));
}

// --- no-manual-lock ------------------------------------------------------

TEST(RuleTest, ManualLockViolation) {
  std::vector<Finding> f =
      LintSnippet("src/x.cc", "mu_.lock();\nwork();\nmu_.unlock();\n");
  EXPECT_EQ(std::count_if(f.begin(), f.end(),
                          [](const Finding& x) {
                            return x.rule == "no-manual-lock";
                          }),
            2);
  EXPECT_TRUE(HasRule(LintSnippet("src/x.cc", "if (mu_->try_lock()) {}\n"),
                      "no-manual-lock"));
}

TEST(RuleTest, ManualLockClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc",
                  "std::lock_guard<std::mutex> lock(mu_);\n"
                  "std::unique_lock<std::mutex> held(mu_);\n"
                  "cv_.wait(held, [&] { return done; });\n"),
      "no-manual-lock"));
}

// --- no-wall-clock -------------------------------------------------------

TEST(RuleTest, WallClockViolation) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/x.cc",
                  "auto now = std::chrono::system_clock::now();\n"),
      "no-wall-clock"));
  EXPECT_TRUE(HasRule(LintSnippet("src/x.cc", "long t = time(nullptr);\n"),
                      "no-wall-clock"));
  EXPECT_TRUE(HasRule(LintSnippet("src/x.cc", "long t = std::time(0);\n"),
                      "no-wall-clock"));
}

TEST(RuleTest, WallClockClean) {
  // steady_clock is monotonic, not wall time.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc",
                  "auto t0 = std::chrono::steady_clock::now();\n"),
      "no-wall-clock"));
  // bench/ may time whatever it likes.
  EXPECT_FALSE(HasRule(
      LintSnippet("bench/x.cc",
                  "auto now = std::chrono::system_clock::now();\n"),
      "no-wall-clock"));
  // A member function named time is not the C library call.
  EXPECT_FALSE(HasRule(LintSnippet("src/x.cc", "double s = report.time();\n"),
                       "no-wall-clock"));
}

// --- banned-functions ----------------------------------------------------

TEST(RuleTest, BannedFunctionsViolation) {
  EXPECT_TRUE(HasRule(LintSnippet("src/x.cc", "int n = std::atoi(env);\n"),
                      "banned-functions"));
  EXPECT_TRUE(HasRule(LintSnippet("bench/x.cc", "sprintf(buf, \"%d\", n);\n"),
                      "banned-functions"));
  EXPECT_TRUE(HasRule(LintSnippet("tests/x.cc", "strcpy(dst, src);\n"),
                      "banned-functions"));
}

TEST(RuleTest, BannedFunctionsClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/x.cc",
                  "long n = std::strtol(env, &end, 10);\n"
                  "std::snprintf(buf, sizeof(buf), \"%ld\", n);\n"),
      "banned-functions"));
  // A member function that happens to share a banned name is fine.
  EXPECT_FALSE(HasRule(LintSnippet("src/x.cc", "parser.atoi(s);\n"),
                       "banned-functions"));
}

// --- header-hygiene ------------------------------------------------------

TEST(RuleTest, HeaderHygieneAcceptsCanonicalGuardAndPragmaOnce) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/common/rng.h",
                  "#ifndef TRAP_COMMON_RNG_H_\n"
                  "#define TRAP_COMMON_RNG_H_\n"
                  "int x;\n"
                  "#endif  // TRAP_COMMON_RNG_H_\n"),
      "header-hygiene"));
  EXPECT_FALSE(HasRule(LintSnippet("src/common/rng.h",
                                   "#pragma once\nint x;\n"),
                       "header-hygiene"));
}

TEST(RuleTest, HeaderHygieneMalformedGuards) {
  // No guard at all.
  EXPECT_TRUE(HasRule(LintSnippet("src/a/b.h", "int x;\n"),
                      "header-hygiene"));
  // Wrong guard name.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/a/b.h",
                  "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"),
      "header-hygiene"));
  // #define does not match the #ifndef.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/a/b.h",
                  "#ifndef TRAP_A_B_H_\n#define OTHER_H\n#endif\n"),
      "header-hygiene"));
  // Guard never closed.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/a/b.h",
                  "#ifndef TRAP_A_B_H_\n#define TRAP_A_B_H_\n#include <v>\n"),
      "header-hygiene"));
  // Rule only applies to headers.
  EXPECT_FALSE(HasRule(LintSnippet("src/a/b.cc", "int x;\n"),
                       "header-hygiene"));
}

TEST(RuleTest, ExpectedGuardNames) {
  EXPECT_EQ(ExpectedGuard("src/common/rng.h"), "TRAP_COMMON_RNG_H_");
  EXPECT_EQ(ExpectedGuard("bench/harness.h"), "TRAP_BENCH_HARNESS_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint/lexer.h"), "TRAP_TOOLS_LINT_LEXER_H_");
}

// --- float-accumulation --------------------------------------------------

TEST(RuleTest, FloatAccumulationViolation) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/engine/cost_model.cc", "float cost = 0.f;\n"),
      "float-accumulation"));
}

TEST(RuleTest, FloatAccumulationClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/engine/cost_model.cc", "double cost = 0.0;\n"),
      "float-accumulation"));
  // Outside src/engine/ the rule does not apply.
  EXPECT_FALSE(HasRule(LintSnippet("src/nn/matrix.cc", "float f = 0.f;\n"),
                       "float-accumulation"));
}

// --- no-heap-on-hot-path -------------------------------------------------

TEST(RuleTest, HeapOnHotPathViolation) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/engine/what_if.cc", "auto* e = new CacheEntry();\n"),
      "no-heap-on-hot-path"));
  EXPECT_TRUE(HasRule(
      LintSnippet("src/engine/cost_model.cc",
                  "auto n = std::make_unique<PlanNode>();\n"),
      "no-heap-on-hot-path"));
  EXPECT_TRUE(HasRule(
      LintSnippet("src/engine/what_if.h",
                  "auto s = std::make_shared<CacheShard>();\n"),
      "no-heap-on-hot-path"));
  EXPECT_TRUE(HasRule(
      LintSnippet("src/engine/scratch.cc",
                  "std::function<void(size_t)> fn = body;\n"),
      "no-heap-on-hot-path"));
}

TEST(RuleTest, HeapOnHotPathClean) {
  // Reusing arena capacity is the sanctioned idiom.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/engine/what_if.cc",
                  "sc.unique_costs.assign(n, 0.0);\n"),
      "no-heap-on-hot-path"));
  // Cold engine files (the plan-tree module) and everything outside the
  // cost kernels are out of scope.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/engine/plan.cc",
                  "auto n = std::make_unique<PlanNode>();\n"),
      "no-heap-on-hot-path"));
  EXPECT_FALSE(HasRule(
      LintSnippet("src/advisor/x.cc", "std::function<void()> fn;\n"),
      "no-heap-on-hot-path"));
  // Only std::function is the type-erasure ban; other namespaces' function
  // identifiers are unrelated.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/engine/what_if.cc", "util::function<void()> fn;\n"),
      "no-heap-on-hot-path"));
  // An audited suppression documents a cold path without tripping the
  // mandatory-reason audit.
  std::vector<Finding> f = LintSnippet(
      "src/engine/cost_model.cc",
      "auto n = std::make_unique<PlanNode>();  "
      "// NOLINT(no-heap-on-hot-path): cold plan path\n");
  EXPECT_FALSE(HasRule(f, "no-heap-on-hot-path"));
  EXPECT_FALSE(HasRule(f, "nolint-reason"));
}

// --- metric-name-style ---------------------------------------------------

TEST(RuleTest, MetricNameStyleViolation) {
  // Missing the trap. root.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/obs/m.cc", "reg.counter(\"whatif.calls\");\n"),
      "metric-name-style"));
  // Only one segment after the root.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/obs/m.cc", "reg.counter(\"trap.calls\");\n"),
      "metric-name-style"));
  // Upper case / digits are not allowed in segments.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/obs/m.cc", "reg.counter(\"trap.WhatIf.calls\");\n"),
      "metric-name-style"));
  EXPECT_TRUE(HasRule(
      LintSnippet("src/obs/m.cc", "reg->histogram(\"trap.batch.v2\");\n"),
      "metric-name-style"));
}

TEST(RuleTest, MetricNameStyleClean) {
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/m.cc", "reg.counter(\"trap.whatif.calls\");\n"),
      "metric-name-style"));
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/m.cc",
                  "reg->histogram(\"trap.whatif.batch_size\");\n"),
      "metric-name-style"));
  // Names assembled at runtime are out of the rule's reach: the leading
  // literal is only a prefix, not the full name.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/m.cc",
                  "reg.counter(\"trap.advisor.\" + seg + \".recommends\");\n"),
      "metric-name-style"));
  // counter/histogram as free identifiers (not member calls) do not match.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/m.cc", "int counter(\"not.a.metric\");\n"),
      "metric-name-style"));
}

// --- suppression policy --------------------------------------------------

TEST(SuppressionTest, NolintWithReasonSilencesTheFinding) {
  std::vector<Finding> f = LintSnippet(
      "src/x.cc",
      "int n = atoi(s);  // NOLINT(banned-functions): input is "
      "compile-time constant\n");
  EXPECT_TRUE(f.empty());
}

TEST(SuppressionTest, NolintWithoutReasonIsItsOwnFinding) {
  std::vector<Finding> f =
      LintSnippet("src/x.cc", "int n = atoi(s);  // NOLINT(banned-functions)\n");
  EXPECT_FALSE(HasRule(f, "banned-functions"));  // still suppressed...
  EXPECT_TRUE(HasRule(f, "nolint-reason"));      // ...but audited
}

TEST(SuppressionTest, NolintOnlyCoversItsOwnLineAndRule) {
  std::vector<Finding> f = LintSnippet(
      "src/x.cc",
      "int n = atoi(s);  // NOLINT(no-raw-thread): wrong rule named\n"
      "int m = atoi(t);\n");
  EXPECT_EQ(std::count_if(f.begin(), f.end(),
                          [](const Finding& x) {
                            return x.rule == "banned-functions";
                          }),
            2);
}

TEST(SuppressionTest, WildcardNolintCoversAllRulesOnTheLine) {
  std::vector<Finding> f = LintSnippet(
      "src/x.cc", "int r = rand() + atoi(s);  // NOLINT\n");
  EXPECT_FALSE(HasRule(f, "no-unseeded-randomness"));
  EXPECT_FALSE(HasRule(f, "banned-functions"));
  EXPECT_TRUE(HasRule(f, "nolint-reason"));  // bare NOLINT still needs one
}

}  // namespace
}  // namespace trap::lint
