#ifndef TRAP_TESTING_TRACE_SCENARIO_H_
#define TRAP_TESTING_TRACE_SCENARIO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace trap::proptest {

// A small, fully deterministic end-to-end evaluation used to exercise the
// observability layer: a batched what-if sweep over the global thread pool,
// one advisor recommendation through the retry runtime, and one random
// perturber pass. The same options produce bit-identical metric and trace
// digests for every TRAP_THREADS value — the invariant obs_test and
// check.sh assert, and the workload trap_trace replays for humans.
struct TraceScenarioOptions {
  std::string schema = "tpch";     // tpch | tpcds | transaction
  std::string advisor = "Extend";  // any advisor::AllAdvisorNames() entry
  std::uint64_t seed = 0x7ace;
  int pool_size = 12;              // generated query pool
  int workload_size = 4;           // queries per workload
  int sweep_columns = 8;           // single-column configs in the sweep

  // Thread pool for batched fan-out. Not owned; nullptr means the
  // TRAP_THREADS-sized global pool. obs_test runs the scenario with pools
  // of several sizes and asserts the digests match.
  common::ThreadPool* pool = nullptr;
};

// Runs the scenario with metrics and tracing attached. The global metric
// registry and `sink` are Reset() first, so the resulting digests describe
// exactly this run. Returns the first error (unknown schema/advisor name,
// or a failed evaluation step); the trace collected so far stays in `sink`.
common::Status RunTraceScenario(const TraceScenarioOptions& options,
                                obs::TraceSink* sink);

}  // namespace trap::proptest

#endif  // TRAP_TESTING_TRACE_SCENARIO_H_
