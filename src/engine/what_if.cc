#include "engine/what_if.h"

#include "common/rng.h"

namespace trap::engine {

WhatIfOptimizer::WhatIfOptimizer(const catalog::Schema& schema,
                                 CostParams params)
    : model_(schema, params) {}

double WhatIfOptimizer::CachedCost(const sql::Query& q, uint64_t config_fp,
                                   const IndexConfig& config) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t query_fp = sql::Fingerprint(q);
  const uint64_t key = common::HashCombine(query_fp, config_fp);
  CacheShard& shard = shards_[key >> 60];  // high bits: 64 - log2(16)
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second.query_fp == query_fp &&
          it->second.config_fp == config_fp) {
        return it->second.cost;
      }
      // 64-bit collision: fall through and recompute; the existing entry
      // keeps its slot (collisions are ~never, correctness is what matters).
      num_collisions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  double cost = model_.QueryCost(q, config);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(
        key, CacheEntry{query_fp, config_fp, cost});
    (void)it;
    // Count the miss only on actual insertion so two threads racing to fill
    // the same entry (both computing the identical value) report one miss.
    if (inserted) num_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return cost;
}

double WhatIfOptimizer::QueryCost(const sql::Query& q,
                                  const IndexConfig& config) const {
  return CachedCost(q, config.Fingerprint(), config);
}

std::vector<double> WhatIfOptimizer::QueryCosts(
    const sql::Query& q, const std::vector<IndexConfig>& configs,
    common::ThreadPool* pool) const {
  std::vector<double> costs(configs.size());
  RunParallel(pool, configs.size(), [&](size_t i) {
    costs[i] = CachedCost(q, configs[i].Fingerprint(), configs[i]);
  });
  return costs;
}

std::unique_ptr<PlanNode> WhatIfOptimizer::Plan(const sql::Query& q,
                                                const IndexConfig& config) const {
  return model_.Plan(q, config);
}

size_t WhatIfOptimizer::cache_size() const {
  size_t total = 0;
  for (const CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void WhatIfOptimizer::ClearCache() {
  for (CacheShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace trap::engine
