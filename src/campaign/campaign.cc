#include "campaign/campaign.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "campaign/wire.h"
#include "common/file_util.h"
#include "common/frame.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/subprocess.h"
#include "testing/harness.h"

namespace trap::campaign {

namespace {

using proptest::CampaignCase;
using proptest::CampaignCaseSpec;
using proptest::ShardSpec;

constexpr int kDefaultShards = 8;

// Identifies a (spec, shard plan) so a journal can refuse to resume a
// different campaign. Deliberately excludes `workers`: the digest is
// topology-independent, so a journal written under 4 workers may resume
// under 1 (or in-process).
std::uint64_t SpecFingerprint(const proptest::FaultCampaignOptions& o,
                              int num_shards) {
  std::uint64_t h = 0xca3b;
  for (char c : o.schema) {
    h = common::HashCombine(h, static_cast<unsigned char>(c));
  }
  h = common::HashCombine(h, o.seed);
  h = common::HashCombine(h, o.step_budget);
  h = common::HashCombine(h, static_cast<std::uint64_t>(o.workloads));
  for (double p : o.probabilities) {
    h = common::HashCombine(h, std::bit_cast<std::uint64_t>(p));
  }
  h = common::HashCombine(h, static_cast<std::uint64_t>(num_shards));
  return h;
}

// Re-dispatch delay for a failed shard, measured in dispatch slots (how
// many other pending units run first): exponential in the attempt number
// plus seeded jitter, so repeated failures back off deterministically.
int BackoffSlots(std::uint64_t seed, int shard, int attempt) {
  const int base = 1 << std::min(attempt, 4);
  const std::uint64_t jitter = common::HashCombine(
      seed, common::HashCombine(0xb0ffu + static_cast<std::uint64_t>(shard),
                                static_cast<std::uint64_t>(attempt)));
  return base - 1 + static_cast<int>(jitter % static_cast<std::uint64_t>(base));
}

struct Attempt {
  int shard = 0;
  int attempt = 1;  // 1-based, like RetryPolicy
};

// Mutable state shared by the in-process and worker-mode runners.
struct Run {
  const CampaignOptions* opts = nullptr;
  std::FILE* log = nullptr;
  std::vector<CampaignCaseSpec> cases;
  std::vector<ShardSpec> plan;
  std::uint64_t spec_fp = 0;

  std::map<int, std::vector<CampaignCase>> completed;  // by shard_id
  std::vector<ShardFailure> failed;
  std::deque<Attempt> pending;
  int completed_this_run = 0;
  int retries = 0;
  int worker_restarts = 0;
  int resumed_shards = 0;
  bool interrupted = false;

  bool StopRequested() const {
    return opts->stop_after_shards >= 0 &&
           completed_this_run >= opts->stop_after_shards;
  }

  std::string JournalContent() const {
    std::string out = "{\"type\":\"campaign-journal\",\"spec_fp\":" +
                      JsonHex(spec_fp) +
                      common::StrFormat(",\"shards\":%zu,\"cases\":%zu}\n",
                                        plan.size(), cases.size());
    for (const auto& [shard, shard_cases] : completed) {
      out += common::StrFormat("{\"type\":\"shard\",\"shard\":%d,\"cases\":[",
                               shard);
      for (size_t i = 0; i < shard_cases.size(); ++i) {
        if (i > 0) out += ",";
        out += EncodeCampaignCase(shard_cases[i]);
      }
      out += "]}\n";
    }
    return out;
  }

  // Records a completed shard and checkpoints the journal. The journal is
  // rewritten whole and published atomically: an append could leave a torn
  // tail after a crash, a rename cannot.
  common::Status CompleteShard(int shard, std::vector<CampaignCase> results) {
    completed[shard] = std::move(results);
    ++completed_this_run;
    if (!opts->journal_path.empty()) {
      TRAP_RETURN_IF_ERROR(common::AtomicWriteFile(
          opts->journal_path, JournalContent(), /*sync_to_disk=*/true));
    }
    return common::Status::Ok();
  }

  // One dispatch attempt of `a` failed with fault `site`. Bounded retry
  // with seeded exponential backoff; exhaustion degrades to a structured
  // ShardFailure instead of aborting the campaign.
  void FailShardAttempt(const Attempt& a, const char* site,
                        const std::string& why) {
    const ShardSpec& shard = plan[static_cast<size_t>(a.shard)];
    if (a.attempt >= opts->max_attempts) {
      ShardFailure f;
      f.shard_id = a.shard;
      f.site = site;
      f.attempts = a.attempt;
      f.begin = shard.begin;
      f.end = shard.end;
      f.message = why;
      failed.push_back(std::move(f));
      if (log != nullptr) {
        std::fprintf(log,
                     "campaign shard %d abandoned after %d attempt(s): %s "
                     "(%s); cases [%d, %d) lost\n",
                     a.shard, a.attempt, site, why.c_str(), shard.begin,
                     shard.end);
      }
      return;
    }
    ++retries;
    const int slots = BackoffSlots(spec_fp, a.shard, a.attempt);
    const size_t pos =
        std::min(pending.size(), static_cast<size_t>(slots));
    pending.insert(pending.begin() + static_cast<std::ptrdiff_t>(pos),
                   Attempt{a.shard, a.attempt + 1});
    if (log != nullptr) {
      std::fprintf(log,
                   "campaign shard %d attempt %d failed: %s (%s); "
                   "re-dispatching after %d slot(s)\n",
                   a.shard, a.attempt, site, why.c_str(), slots);
    }
  }
};

// --------------------------------------------------------------------------
// Journal replay
// --------------------------------------------------------------------------

common::Status LoadJournal(Run* run) {
  common::StatusOr<std::string> content =
      common::ReadFileToString(run->opts->journal_path);
  if (!content.ok()) {
    // Missing journal = fresh run; --resume is idempotent over "nothing
    // checkpointed yet".
    if (content.status().code() == common::StatusCode::kUnavailable) {
      return common::Status::Ok();
    }
    return content.status();
  }
  bool saw_header = false;
  size_t start = 0;
  const std::string& text = *content;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    common::StatusOr<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return common::Status::InvalidArgument(
          "journal corrupt: " + parsed.status().message());
    }
    const std::optional<std::string> type = parsed->StringAt("type");
    if (!saw_header) {
      if (type != "campaign-journal") {
        return common::Status::InvalidArgument(
            "journal corrupt: missing header");
      }
      const std::optional<std::uint64_t> fp = parsed->HexAt("spec_fp");
      const std::optional<std::int64_t> shards = parsed->IntAt("shards");
      const std::optional<std::int64_t> num_cases = parsed->IntAt("cases");
      if (!fp || !shards || !num_cases) {
        return common::Status::InvalidArgument(
            "journal corrupt: malformed header");
      }
      if (*fp != run->spec_fp ||
          *shards != static_cast<std::int64_t>(run->plan.size()) ||
          *num_cases != static_cast<std::int64_t>(run->cases.size())) {
        return common::Status::InvalidArgument(
            "journal was written for a different campaign spec; refusing "
            "to resume (delete it or rerun without --resume)");
      }
      saw_header = true;
      continue;
    }
    if (type != "shard") {
      return common::Status::InvalidArgument(
          "journal corrupt: unexpected line type");
    }
    const std::optional<std::int64_t> shard = parsed->IntAt("shard");
    const JsonValue* shard_cases = parsed->Find("cases");
    if (!shard || *shard < 0 ||
        *shard >= static_cast<std::int64_t>(run->plan.size()) ||
        shard_cases == nullptr ||
        shard_cases->kind != JsonValue::Kind::kArray) {
      return common::Status::InvalidArgument(
          "journal corrupt: malformed shard line");
    }
    const ShardSpec& spec = run->plan[static_cast<size_t>(*shard)];
    if (static_cast<std::int64_t>(shard_cases->items.size()) !=
        spec.end - spec.begin) {
      return common::Status::InvalidArgument(common::StrFormat(
          "journal corrupt: shard %lld has %zu case(s), want %d",
          static_cast<long long>(*shard), shard_cases->items.size(),
          spec.end - spec.begin));
    }
    std::vector<CampaignCase> decoded;
    for (size_t i = 0; i < shard_cases->items.size(); ++i) {
      std::optional<CampaignCase> c =
          DecodeCampaignCase(shard_cases->items[i]);
      if (!c.has_value() ||
          c->case_index != spec.begin + static_cast<int>(i)) {
        return common::Status::InvalidArgument(
            "journal corrupt: malformed case record");
      }
      decoded.push_back(*std::move(c));
    }
    run->completed[static_cast<int>(*shard)] = std::move(decoded);
  }
  if (!saw_header && !text.empty()) {
    return common::Status::InvalidArgument("journal corrupt: no header");
  }
  run->resumed_shards = static_cast<int>(run->completed.size());
  if (run->log != nullptr && run->resumed_shards > 0) {
    std::fprintf(run->log, "campaign resume: %d/%zu shard(s) from %s\n",
                 run->resumed_shards, run->plan.size(),
                 run->opts->journal_path.c_str());
  }
  return common::Status::Ok();
}

// --------------------------------------------------------------------------
// In-process fallback
// --------------------------------------------------------------------------

common::Status RunInProcess(Run* run) {
  TRAP_ASSIGN_OR_RETURN(proptest::CampaignEnv env,
                        proptest::CampaignEnv::Make(run->opts->base));
  while (!run->pending.empty()) {
    if (run->StopRequested()) {
      run->interrupted = true;
      return common::Status::Ok();
    }
    const Attempt a = run->pending.front();
    run->pending.pop_front();
    const ShardSpec& shard = run->plan[static_cast<size_t>(a.shard)];
    std::vector<CampaignCase> results;
    results.reserve(static_cast<size_t>(shard.end - shard.begin));
    for (int i = shard.begin; i < shard.end; ++i) {
      results.push_back(env.RunCase(run->cases[static_cast<size_t>(i)]));
    }
    TRAP_RETURN_IF_ERROR(run->CompleteShard(a.shard, std::move(results)));
  }
  return common::Status::Ok();
}

// --------------------------------------------------------------------------
// Worker-mode supervisor
// --------------------------------------------------------------------------

// Writing a unit to a worker that just died must not kill the coordinator.
struct ScopedIgnoreSigpipe {
  using Handler = void (*)(int);
  Handler old;
  ScopedIgnoreSigpipe() { old = signal(SIGPIPE, SIG_IGN); }
  ~ScopedIgnoreSigpipe() { signal(SIGPIPE, old); }
};

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string InitRequestPayload(const CampaignOptions& opts,
                               std::uint64_t id) {
  common::rpc::Request req;
  req.id = id;
  req.method = "init";
  JsonValue& p = req.params;
  p.Set("schema", JsonValue::Str(opts.base.schema));
  p.Set("seed", JsonValue::Hex(opts.base.seed));
  p.Set("step_budget", JsonValue::Hex(opts.base.step_budget));
  p.Set("workloads", JsonValue::Number(opts.base.workloads));
  JsonValue probabilities = JsonValue::Array();
  for (double x : opts.base.probabilities) {
    probabilities.Push(JsonValue::Number(x));
  }
  p.Set("probabilities", std::move(probabilities));
  JsonValue fault_p = JsonValue::Array();
  for (int i = 0; i < kNumWorkerFaults; ++i) {
    fault_p.Push(JsonValue::Number(opts.worker_faults.probability[i]));
  }
  p.Set("fault_p", std::move(fault_p));
  p.Set("fault_seed", JsonValue::Hex(opts.worker_faults.seed));
  return common::rpc::EncodeRequest(req);
}

struct Slot {
  common::Subprocess proc;
  common::FrameDecoder decoder;
  enum class State { kDead, kIniting, kIdle, kBusy };
  State state = State::kDead;
  Attempt unit{};
  std::chrono::steady_clock::time_point deadline{};
  // rpc envelope bookkeeping: the worker's hello must arrive before any
  // response, and each response must echo the request id in flight.
  bool saw_hello = false;
  std::uint64_t next_id = 0;
  std::uint64_t expect_id = 0;
};

class Supervisor {
 public:
  explicit Supervisor(Run* run) : run_(*run), opts_(*run->opts) {}

  common::Status Execute() {
    ScopedIgnoreSigpipe sigpipe;
    slots_.resize(static_cast<size_t>(
        std::min(opts_.workers,
                 std::max(1, static_cast<int>(run_.pending.size())))));
    // A generous backstop far above what bounded per-shard retries can
    // consume; only a pathologically unspawnable worker exhausts it.
    restart_budget_ = static_cast<int>(run_.plan.size()) *
                          opts_.max_attempts +
                      static_cast<int>(slots_.size()) * 2;
    for (Slot& s : slots_) {
      TRAP_RETURN_IF_ERROR(Spawn(s, /*is_restart=*/false));
    }
    common::Status status = Loop();
    for (Slot& s : slots_) {
      if (s.state != Slot::State::kDead) {
        common::Kill(&s.proc);
        common::ClosePipes(&s.proc);
        common::Reap(&s.proc);
      }
    }
    return status;
  }

 private:
  static std::chrono::steady_clock::time_point Now() {
    return std::chrono::steady_clock::now();
  }

  common::Status Spawn(Slot& s, bool is_restart) {
    TRAP_ASSIGN_OR_RETURN(
        s.proc, common::SpawnWithPipes({opts_.worker_binary, "--worker"}));
    s.decoder = common::FrameDecoder{};
    s.state = Slot::State::kIniting;
    s.saw_hello = false;
    s.next_id = 1;
    s.expect_id = 1;
    // Init builds the fault-free baselines -- real recommendation work,
    // comparable to a few shards; give it a wide multiple.
    s.deadline = Now() + std::chrono::milliseconds(
                             static_cast<long>(opts_.unit_timeout_ms) * 6);
    if (is_restart) ++run_.worker_restarts;
    if (!WriteAll(s.proc.stdin_fd,
                  common::EncodeFrame(InitRequestPayload(opts_, 1)))) {
      FailSlot(s, "worker.crash", "init write failed");
    }
    return common::Status::Ok();
  }

  // Kills + reaps the worker; a busy unit goes back through the bounded
  // retry path.
  void FailSlot(Slot& s, const char* site, const std::string& why) {
    common::Kill(&s.proc);
    common::ClosePipes(&s.proc);
    common::Reap(&s.proc);
    if (s.state == Slot::State::kBusy) {
      run_.FailShardAttempt(s.unit, site, why);
    } else if (s.state == Slot::State::kIniting) {
      // Worker faults only fire on units, so an init-time death is a real
      // environment problem; repeated ones are fatal below.
      ++init_deaths_;
    }
    s.state = Slot::State::kDead;
  }

  void Dispatch(Slot& s, const Attempt& a) {
    const ShardSpec& shard = run_.plan[static_cast<size_t>(a.shard)];
    // Salted per (spec, shard, attempt): every retry redraws the injected
    // worker faults, so p<1 faults are survived by bounded retries.
    const std::uint64_t salt = common::HashCombine(
        run_.spec_fp,
        common::HashCombine(static_cast<std::uint64_t>(a.shard) + 1,
                            static_cast<std::uint64_t>(a.attempt)));
    common::rpc::Request req;
    req.id = ++s.next_id;
    req.method = "run_shard";
    req.params.Set("shard", JsonValue::Number(a.shard));
    req.params.Set("begin", JsonValue::Number(shard.begin));
    req.params.Set("end", JsonValue::Number(shard.end));
    req.params.Set("salt", JsonValue::Hex(salt));
    const std::string payload = common::rpc::EncodeRequest(req);
    s.unit = a;
    s.expect_id = req.id;
    s.state = Slot::State::kBusy;
    s.deadline =
        Now() + std::chrono::milliseconds(opts_.unit_timeout_ms);
    if (!WriteAll(s.proc.stdin_fd, common::EncodeFrame(payload))) {
      FailSlot(s, "worker.crash", "unit write failed (worker died)");
    }
  }

  int CountAlive() const {
    int n = 0;
    for (const Slot& s : slots_) n += s.state != Slot::State::kDead ? 1 : 0;
    return n;
  }

  int CountBusy() const {
    int n = 0;
    for (const Slot& s : slots_) n += s.state == Slot::State::kBusy ? 1 : 0;
    return n;
  }

  // Respawns dead slots while work outstrips live workers.
  common::Status EnsureCapacity() {
    const int outstanding =
        static_cast<int>(run_.pending.size()) + CountBusy();
    for (Slot& s : slots_) {
      if (CountAlive() >= std::min(static_cast<int>(slots_.size()),
                                   outstanding)) {
        break;
      }
      if (s.state != Slot::State::kDead) continue;
      if (restart_budget_ <= 0) break;
      --restart_budget_;
      TRAP_RETURN_IF_ERROR(Spawn(s, /*is_restart=*/true));
    }
    return common::Status::Ok();
  }

  // One complete frame from `s`. Returns false when the worker was failed.
  bool HandleFrame(Slot& s, const std::string& payload) {
    // The first frame out of any worker is the protocol handshake; a peer
    // built against a different rpc version dies here, on frame one.
    if (!s.saw_hello) {
      const common::Status hello =
          common::rpc::CheckHello(payload, "campaign-worker");
      if (!hello.ok()) {
        FailSlot(s, "worker.garbage_frame",
                 "bad hello: " + hello.message());
        return false;
      }
      s.saw_hello = true;
      return true;
    }
    common::StatusOr<common::rpc::Response> resp =
        common::rpc::DecodeResponse(payload);
    if (!resp.ok()) {
      FailSlot(s, "worker.garbage_frame",
               "unparseable frame: " + resp.status().message());
      return false;
    }
    if (resp->id != s.expect_id) {
      FailSlot(s, "worker.garbage_frame", "response id mismatch");
      return false;
    }
    if (!resp->ok()) {
      // A structured rejection (unknown schema, malformed unit) would hit
      // every worker alike: configuration, not a fault. Fail the campaign.
      fatal_ = common::Status::Internal(
          "worker rejected " +
          std::string(s.state == Slot::State::kIniting ? "init" : "unit") +
          ": " + resp->message);
      return true;
    }
    if (s.state == Slot::State::kIniting) {
      init_deaths_ = 0;
      s.state = Slot::State::kIdle;
      return true;
    }
    if (s.state == Slot::State::kBusy) {
      const Attempt a = s.unit;
      const std::optional<std::int64_t> shard = resp->result.IntAt("shard");
      const JsonValue* shard_cases = resp->result.Find("cases");
      const ShardSpec& spec = run_.plan[static_cast<size_t>(a.shard)];
      if (shard != a.shard || shard_cases == nullptr ||
          shard_cases->kind != JsonValue::Kind::kArray ||
          static_cast<int>(shard_cases->items.size()) !=
              spec.end - spec.begin) {
        FailSlot(s, "worker.garbage_frame", "result frame inconsistent");
        return false;
      }
      std::vector<CampaignCase> decoded;
      for (size_t i = 0; i < shard_cases->items.size(); ++i) {
        std::optional<CampaignCase> c =
            DecodeCampaignCase(shard_cases->items[i]);
        if (!c.has_value() ||
            c->case_index != spec.begin + static_cast<int>(i)) {
          FailSlot(s, "worker.garbage_frame", "malformed case record");
          return false;
        }
        decoded.push_back(*std::move(c));
      }
      s.state = Slot::State::kIdle;
      if (run_.completed.count(a.shard) == 0) {
        fatal_ = run_.CompleteShard(a.shard, std::move(decoded));
        if (!fatal_.ok()) return true;
        fatal_ = common::Status::Ok();
      }
      return true;
    }
    FailSlot(s, "worker.garbage_frame", "unsolicited response");
    return false;
  }

  void ReadFromSlot(Slot& s) {
    char buf[1 << 16];
    const ssize_t n = read(s.proc.stdout_fd, buf, sizeof buf);
    if (n <= 0) {
      FailSlot(s, "worker.crash",
               n == 0 ? "worker closed its pipe (crash or exit)"
                      : std::string("read: ") + std::strerror(errno));
      return;
    }
    s.decoder.Append(buf, static_cast<size_t>(n));
    for (;;) {
      std::string payload;
      std::string error;
      switch (s.decoder.Next(&payload, &error)) {
        case common::FrameDecoder::Result::kFrame:
          if (!HandleFrame(s, payload) || !fatal_.ok()) return;
          break;
        case common::FrameDecoder::Result::kMalformed:
          FailSlot(s, "worker.garbage_frame", error);
          return;
        case common::FrameDecoder::Result::kNeedMore:
          return;
      }
    }
  }

  common::Status Loop() {
    while (fatal_.ok()) {
      const bool work_remaining =
          !run_.pending.empty() || CountBusy() > 0;
      if (run_.StopRequested() && work_remaining) {
        run_.interrupted = true;
        break;
      }
      if (!work_remaining) break;
      if (init_deaths_ > static_cast<int>(slots_.size()) + 2) {
        return common::Status::Internal(
            "workers repeatedly die during init (bad worker binary?)");
      }
      TRAP_RETURN_IF_ERROR(EnsureCapacity());
      // Dispatch pending shards onto idle workers.
      for (Slot& s : slots_) {
        if (run_.pending.empty()) break;
        if (s.state != Slot::State::kIdle) continue;
        const Attempt a = run_.pending.front();
        run_.pending.pop_front();
        Dispatch(s, a);
      }
      if (CountAlive() == 0) {
        // Restart budget exhausted and everything is dead: degrade the
        // rest of the queue to failures instead of spinning.
        while (!run_.pending.empty()) {
          Attempt a = run_.pending.front();
          run_.pending.pop_front();
          a.attempt = opts_.max_attempts;
          run_.FailShardAttempt(a, "worker.crash",
                                "worker restart budget exhausted");
        }
        break;
      }
      // Wait for frames or deadlines.
      std::vector<pollfd> fds;
      std::vector<size_t> fd_slots;
      auto next_deadline = Now() + std::chrono::milliseconds(1000);
      for (size_t i = 0; i < slots_.size(); ++i) {
        Slot& s = slots_[i];
        if (s.state == Slot::State::kDead) continue;
        fds.push_back(pollfd{s.proc.stdout_fd, POLLIN, 0});
        fd_slots.push_back(i);
        if (s.state != Slot::State::kIdle && s.deadline < next_deadline) {
          next_deadline = s.deadline;
        }
      }
      const auto wait =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              next_deadline - Now())
              .count();
      const int timeout_ms =
          static_cast<int>(std::clamp<long long>(wait, 10, 1000));
      const int ready = poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) {
        return common::Status::Internal(std::string("poll: ") +
                                        std::strerror(errno));
      }
      for (size_t i = 0; i < fds.size(); ++i) {
        Slot& s = slots_[fd_slots[i]];
        if (s.state == Slot::State::kDead) continue;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          ReadFromSlot(s);
          if (!fatal_.ok()) return fatal_;
        }
      }
      // Deadline sweep: a busy worker past its deadline is hung (the
      // injected worker.hang looks exactly like a real one); an initing
      // worker past its deadline never came up.
      const auto now = Now();
      for (Slot& s : slots_) {
        if (s.state == Slot::State::kIdle ||
            s.state == Slot::State::kDead) {
          continue;
        }
        if (s.deadline <= now) {
          FailSlot(s, "worker.hang", "unit deadline exceeded");
        }
      }
    }
    return fatal_;
  }

  Run& run_;
  const CampaignOptions& opts_;
  std::vector<Slot> slots_;
  int restart_budget_ = 0;
  int init_deaths_ = 0;
  common::Status fatal_ = common::Status::Ok();
};

CampaignReport FinishReport(Run* run) {
  CampaignReport report;
  report.total_cases = static_cast<int>(run->cases.size());
  report.shards = static_cast<int>(run->plan.size());
  report.retries = run->retries;
  report.worker_restarts = run->worker_restarts;
  report.resumed_shards = run->resumed_shards;
  report.interrupted = run->interrupted;
  for (const auto& [shard, shard_cases] : run->completed) {
    for (const CampaignCase& c : shard_cases) {
      report.digest ^= proptest::CampaignCaseHash(c);
      if (!c.note.empty()) ++report.violations;
      report.cases.push_back(c);
    }
  }
  std::sort(report.cases.begin(), report.cases.end(),
            [](const CampaignCase& a, const CampaignCase& b) {
              return a.case_index < b.case_index;
            });
  report.completed_cases = static_cast<int>(report.cases.size());
  report.failed_shards = run->failed;
  std::sort(report.failed_shards.begin(), report.failed_shards.end(),
            [](const ShardFailure& a, const ShardFailure& b) {
              return a.shard_id < b.shard_id;
            });
  return report;
}

}  // namespace

std::vector<advisor::FailureRecord> CampaignReport::FailureRecords() const {
  std::vector<advisor::FailureRecord> out;
  for (const ShardFailure& f : failed_shards) {
    advisor::FailureRecord r;
    r.advisor = common::StrFormat("shard-%d", f.shard_id);
    r.site = f.site;
    r.code = common::StatusCode::kResourceExhausted;  // retries spent
    r.message = common::StrFormat("cases [%d, %d) lost: %s", f.begin, f.end,
                                  f.message.c_str());
    r.attempts = f.attempts;
    r.degraded = true;  // the campaign degraded to partial coverage
    out.push_back(std::move(r));
  }
  return out;
}

common::StatusOr<CampaignReport> RunCampaign(const CampaignOptions& opts,
                                             std::FILE* log) {
  if (opts.workers < 0 || opts.shards < 0 || opts.max_attempts < 1 ||
      opts.unit_timeout_ms < 1) {
    return common::Status::InvalidArgument("bad campaign options");
  }
  if (opts.workers > 0 && opts.worker_binary.empty()) {
    return common::Status::InvalidArgument(
        "worker_binary is required when workers > 0");
  }
  if (opts.resume && opts.journal_path.empty()) {
    return common::Status::InvalidArgument("--resume needs a journal path");
  }
  if (!proptest::MakeSchemaByName(opts.base.schema).has_value()) {
    return common::Status::InvalidArgument("unknown schema: " +
                                           opts.base.schema);
  }

  Run run;
  run.opts = &opts;
  run.log = log;
  run.cases = proptest::EnumerateCampaignCases(opts.base);
  const int shards_requested =
      opts.shards > 0 ? opts.shards : kDefaultShards;
  run.plan =
      proptest::MakeShardPlan(static_cast<int>(run.cases.size()),
                              shards_requested);
  run.spec_fp = SpecFingerprint(opts.base,
                                static_cast<int>(run.plan.size()));
  if (run.cases.empty()) {
    return common::Status::InvalidArgument("campaign case space is empty");
  }
  if (opts.resume) {
    TRAP_RETURN_IF_ERROR(LoadJournal(&run));
  }
  for (const ShardSpec& shard : run.plan) {
    if (run.completed.count(shard.shard_id) == 0) {
      run.pending.push_back(Attempt{shard.shard_id, 1});
    }
  }

  if (opts.workers == 0) {
    TRAP_RETURN_IF_ERROR(RunInProcess(&run));
  } else {
    Supervisor supervisor(&run);
    TRAP_RETURN_IF_ERROR(supervisor.Execute());
  }

  CampaignReport report = FinishReport(&run);
  if (log != nullptr) {
    for (const CampaignCase& c : report.cases) {
      proptest::LogCampaignCase(log, c);
    }
    std::fprintf(log, "campaign digest: %016llx\n",
                 static_cast<unsigned long long>(report.digest));
    std::fprintf(log, "campaign: %d case(s), %d violation(s)\n",
                 report.completed_cases, report.violations);
    std::fprintf(log,
                 "campaign coverage: %d/%d case(s), %zu/%d shard(s) "
                 "complete, %zu failed, %d retries, %d restarts, %d "
                 "resumed%s\n",
                 report.completed_cases, report.total_cases,
                 run.completed.size(), report.shards, run.failed.size(),
                 report.retries, report.worker_restarts,
                 report.resumed_shards,
                 report.interrupted ? ", interrupted" : "");
  }
  return report;
}

}  // namespace trap::campaign
