#ifndef TRAP_COMMON_RNG_H_
#define TRAP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace trap::common {

// Deterministic random number generator. All randomness in the library flows
// through explicitly seeded Rng instances so that every experiment is
// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Returns a uniformly distributed integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TRAP_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Returns a uniformly distributed double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Returns a normally distributed double.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Returns true with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // All weights must be non-negative and at least one must be positive.
  int WeightedIndex(const std::vector<double>& weights) {
    TRAP_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
      TRAP_CHECK(w >= 0.0);
      total += w;
    }
    TRAP_CHECK(total > 0.0);
    double r = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  // Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Picks a uniformly random element of `items`, which must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    TRAP_CHECK(!items.empty());
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  // Forks a child generator whose stream is independent of subsequent draws
  // from this generator. Useful for giving each subsystem its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// A deterministic 64-bit mix of two values; used to derive stable
// pseudo-random per-entity factors (e.g. per-(table, column) correlation
// coefficients) without consuming Rng state.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t x = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Maps a 64-bit hash to a double in [0, 1).
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace trap::common

#endif  // TRAP_COMMON_RNG_H_
