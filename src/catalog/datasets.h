#ifndef TRAP_CATALOG_DATASETS_H_
#define TRAP_CATALOG_DATASETS_H_

#include "catalog/schema.h"

namespace trap::catalog {

// Builders for the evaluation schemas used in the paper (Section V-A).
// Tuple data is modelled as statistics only; the statistics are deterministic
// functions of the schema definition, so every run sees the same "database".

// TPC-H-like OLAP schema: 8 tables, 61 columns, snowflake join graph.
// `scale` multiplies the base row counts (scale=1 corresponds to ~SF1 shapes).
Schema MakeTpcH(double scale = 1.0);

// TPC-DS-like OLAP schema: 25 tables, 429 columns, star joins from multiple
// fact tables into shared dimensions.
Schema MakeTpcDs(double scale = 1.0);

// TRANSACTION: a banking OLTP-style schema with 10 tables and 189 columns,
// mirroring the paper's real-world workload (accounts, cards, transfers...).
Schema MakeTransaction(double scale = 1.0);

// Large synthetic schemas for the scalability study (Fig. 10): real-world
// complex databases with `num_columns` total columns in [809, 1265].
Schema MakeLargeSynthetic(int num_columns, uint64_t seed);

}  // namespace trap::catalog

#endif  // TRAP_CATALOG_DATASETS_H_
