#ifndef TRAP_TOOLS_LINT_PROJECT_RULES_H_
#define TRAP_TOOLS_LINT_PROJECT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/rules.h"

namespace trap::lint {

// The committed module DAG (tools/lint/layers.txt). Each src/ module names
// the modules it may include from; including itself is always allowed, and
// the allow-list is written out transitively explicit (engine lists common
// even though workload already implies it) so a reviewer can read one line
// and know a module's full reach.
struct LayerConfig {
  // module -> modules it may depend on. A src/ module absent from this map
  // is itself a layering finding: new modules must be placed in the DAG.
  std::map<std::string, std::set<std::string>> allowed;
};

// Parses the layers.txt format:
//   # comment
//   <module>: <dep> <dep> ...
// Returns false (with a message in *error) on a malformed line or a
// duplicate module entry.
bool ParseLayerConfig(const std::string& content, LayerConfig* config,
                      std::string* error);

// --- project rules -------------------------------------------------------
//
//   layering          a src/ module includes a module its layers.txt entry
//                     does not allow, a src/ file includes tools/ bench/
//                     tests/ examples/ (the library must never depend on
//                     its harnesses), or a src/ module is missing from the
//                     committed DAG entirely.
//   include-cycle     the project-internal include graph has a cycle.
//                     Reported once per cycle, at the edge that closes it,
//                     with the full path in the message.
//   status-discipline a call to a function the project index knows returns
//                     trap::Status / StatusOr<T> is used as a bare
//                     expression statement: neither assigned, returned,
//                     passed to TRAP_RETURN_IF_ERROR /
//                     TRAP_ASSIGN_OR_RETURN (or any enclosing expression),
//                     nor (void)-discarded with a NOLINT reason. [[nodiscard]]
//                     catches plain discards at compile time; this rule is
//                     the analyzer backstop that also makes (void)-laundering
//                     carry an audited reason.

// Layering over every indexed file. Findings are attributed to the
// including file at the offending #include's line.
void CheckLayering(const ProjectIndex& project, const LayerConfig& config,
                   std::vector<Finding>* out);

// Include-cycle detection over the resolved project-internal include graph.
void CheckIncludeCycles(const ProjectIndex& project,
                        std::vector<Finding>* out);

// Status-discipline for one file, using the project-wide return-kind table.
void CheckStatusDiscipline(const SourceFile& f, const ProjectIndex& project,
                           std::vector<Finding>* out);

}  // namespace trap::lint

#endif  // TRAP_TOOLS_LINT_PROJECT_RULES_H_
