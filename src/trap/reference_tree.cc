#include "trap/reference_tree.h"

#include <algorithm>

namespace trap::trap {

namespace {

using catalog::ColumnId;
using sql::AggFunc;
using sql::CmpOp;
using sql::Conjunction;
using sql::ReservedWord;
using sql::Token;
using sql::TokenType;

bool Contains(const std::vector<ColumnId>& cols, ColumnId c) {
  return std::find(cols.begin(), cols.end(), c) != cols.end();
}

bool IsNumeric(const catalog::Column& col) {
  return col.type != catalog::ColumnType::kString;
}

// Aggregators applicable to a column's type.
std::vector<AggFunc> CompatibleAggs(const catalog::Column& col) {
  if (IsNumeric(col)) {
    return {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
            AggFunc::kMax};
  }
  return {AggFunc::kCount, AggFunc::kMin, AggFunc::kMax};
}

}  // namespace

ReferenceTree::ReferenceTree(const sql::Query& q, const sql::Vocabulary& vocab,
                             PerturbationConstraint constraint, int epsilon)
    : query_(q), vocab_(&vocab), constraint_(constraint), epsilon_(epsilon) {
  TRAP_CHECK(epsilon >= 0);
  query_has_aggregates_ =
      std::any_of(q.select.begin(), q.select.end(), [](const sql::SelectItem& s) {
        return s.agg != AggFunc::kNone;
      });
  current_pred_column_.resize(q.filters.size());
  for (size_t i = 0; i < q.filters.size(); ++i) {
    current_pred_column_[i] = q.filters[i].column;
  }
  BuildSlots();
  ComputeLegal();
}

void ReferenceTree::BuildSlots() {
  const sql::Query& q = query_;
  auto fixed = [&](Token t) { slots_.push_back(Slot{SlotKind::kFixed, t, -1, -1}); };

  fixed(Token::Reserved(ReservedWord::kSelect));
  for (size_t i = 0; i < q.select.size(); ++i) {
    const sql::SelectItem& s = q.select[i];
    if (s.agg != AggFunc::kNone) {
      slots_.push_back(Slot{SlotKind::kSelectAgg, Token::Aggregator(s.agg),
                            static_cast<int>(i), -1});
      slots_.push_back(Slot{SlotKind::kSelectColumn, Token::Column(s.column),
                            static_cast<int>(i), -1});
    } else if (query_has_aggregates_) {
      // Bare columns mirror GROUP BY in aggregated queries: fixed, but they
      // still occupy the payload namespace so extensions cannot repeat them.
      fixed(Token::Column(s.column));
      select_cols_used_.push_back(s.column);
    } else {
      slots_.push_back(Slot{SlotKind::kSelectColumn, Token::Column(s.column),
                            static_cast<int>(i), -1});
    }
  }
  if (constraint_ == PerturbationConstraint::kSharedTable) {
    slots_.push_back(Slot{SlotKind::kSelectExtension,
                          Token::Special(sql::SpecialToken::kStop), -1, -1});
  }
  fixed(Token::Reserved(ReservedWord::kFrom));
  for (int t : q.tables) fixed(Token::Table(t));
  if (!q.joins.empty() || !q.filters.empty()) {
    fixed(Token::Reserved(ReservedWord::kWhere));
    for (size_t i = 0; i < q.joins.size(); ++i) {
      if (i > 0) fixed(Token::Reserved(ReservedWord::kJoinAnd));
      fixed(Token::Column(q.joins[i].left));
      fixed(Token::Operator(CmpOp::kEq));
      fixed(Token::Column(q.joins[i].right));
    }
    if (!q.joins.empty() && !q.filters.empty()) {
      fixed(Token::Reserved(ReservedWord::kJoinAnd));
    }
    for (size_t i = 0; i < q.filters.size(); ++i) {
      if (i > 0) {
        slots_.push_back(Slot{SlotKind::kConjunction,
                              Token::Conj(q.conjunction), -1,
                              static_cast<int>(i)});
      }
      const sql::Predicate& p = q.filters[i];
      slots_.push_back(Slot{SlotKind::kFilterColumn, Token::Column(p.column),
                            -1, static_cast<int>(i)});
      slots_.push_back(Slot{SlotKind::kOperator, Token::Operator(p.op), -1,
                            static_cast<int>(i)});
      slots_.push_back(Slot{SlotKind::kValue,
                            Token::ValueTok(p.column,
                                            vocab_->NearestBucket(p.column, p.value)),
                            -1, static_cast<int>(i)});
    }
    if (constraint_ == PerturbationConstraint::kSharedTable) {
      slots_.push_back(Slot{SlotKind::kWhereExtension,
                            Token::Special(sql::SpecialToken::kStop), -1, -1});
    }
  }
  if (!q.group_by.empty()) {
    fixed(Token::Reserved(ReservedWord::kGroupBy));
    for (ColumnId c : q.group_by) fixed(Token::Column(c));
  }
  if (!q.order_by.empty()) {
    fixed(Token::Reserved(ReservedWord::kOrderBy));
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      slots_.push_back(Slot{SlotKind::kOrderColumn,
                            Token::Column(q.order_by[i]),
                            static_cast<int>(i), -1});
    }
  }
}

bool ReferenceTree::Modifiable(SlotKind kind) const {
  switch (kind) {
    case SlotKind::kFixed:
      return false;
    case SlotKind::kValue:
      return true;
    case SlotKind::kSelectColumn:
    case SlotKind::kFilterColumn:
    case SlotKind::kOrderColumn:
      return constraint_ != PerturbationConstraint::kValueOnly;
    case SlotKind::kSelectAgg:
    case SlotKind::kOperator:
    case SlotKind::kConjunction:
    case SlotKind::kSelectExtension:
    case SlotKind::kWhereExtension:
      return constraint_ == PerturbationConstraint::kSharedTable;
  }
  return false;
}

std::vector<ColumnId> ReferenceTree::AllowedColumns() const {
  if (constraint_ == PerturbationConstraint::kColumnConsistent) {
    return query_.NonJoinColumns();
  }
  // Shared Table: every column of the query's tables.
  std::vector<ColumnId> out;
  const catalog::Schema& schema = vocab_->schema();
  for (int t : query_.tables) {
    for (int c = 0; c < static_cast<int>(schema.table(t).columns.size()); ++c) {
      out.push_back(ColumnId{t, c});
    }
  }
  return out;
}

std::vector<ColumnId> ReferenceTree::ReservedColumns(SlotKind kind) const {
  std::vector<ColumnId> out;
  for (size_t i = pos_ + 1; i < slots_.size(); ++i) {
    if (slots_[i].kind == kind) out.push_back(slots_[i].original.column);
  }
  return out;
}

void ReferenceTree::AppendColumnChoices(
    const std::vector<ColumnId>& used, const std::vector<ColumnId>& reserved,
    std::vector<int>* out) const {
  for (ColumnId c : AllowedColumns()) {
    if (Contains(used, c) || Contains(reserved, c)) continue;
    int id = vocab_->ColumnTokenId(c);
    if (std::find(out->begin(), out->end(), id) == out->end()) {
      out->push_back(id);
    }
  }
}

bool ReferenceTree::Done() const { return pos_ >= slots_.size(); }

const std::vector<int>& ReferenceTree::LegalTokens() const {
  TRAP_CHECK(!Done());
  return legal_;
}

int ReferenceTree::OriginalTokenId() const {
  TRAP_CHECK(!Done());
  if (ext_state_ != ExtState::kIdle) {
    return vocab_->TokenToId(Token::Special(sql::SpecialToken::kStop));
  }
  return vocab_->TokenToId(slots_[pos_].original);
}

void ReferenceTree::ComputeLegal() {
  legal_.clear();
  if (Done()) return;
  const Slot& slot = slots_[pos_];
  const int original_id =
      slot.kind == SlotKind::kSelectExtension ||
              slot.kind == SlotKind::kWhereExtension
          ? vocab_->TokenToId(Token::Special(sql::SpecialToken::kStop))
          : vocab_->TokenToId(slot.original);
  int budget = RemainingBudget();

  auto add = [&](const Token& t) {
    int id = vocab_->TokenToId(t);
    if (std::find(legal_.begin(), legal_.end(), id) == legal_.end()) {
      legal_.push_back(id);
    }
  };

  // Extension sub-states come first (they replace the marker's own options).
  if (ext_state_ == ExtState::kSelectNeedColumn) {
    // Column for a new aggregated payload item (budget was gated at the
    // aggregator head). The pending aggregator is the last output token.
    AggFunc agg = output_.back().agg;
    for (ColumnId c : AllowedColumns()) {
      if (Contains(select_cols_used_, c)) continue;
      const catalog::Column& col = vocab_->schema().column(c);
      if ((agg == AggFunc::kSum || agg == AggFunc::kAvg) && !IsNumeric(col)) {
        continue;
      }
      add(Token::Column(c));
    }
    TRAP_CHECK(!legal_.empty());
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedColumn) {
    // Column of the new predicate (budget was gated at the separator).
    AppendColumnChoices(filter_cols_used_, {}, &legal_);
    TRAP_CHECK(!legal_.empty());
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedOp) {
    for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                     CmpOp::kGt, CmpOp::kGe}) {
      add(Token::Operator(op));
    }
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedValue) {
    for (int b = 0; b < vocab_->values_per_column(); ++b) {
      add(Token::ValueTok(ext_column_, b));
    }
    return;
  }

  switch (slot.kind) {
    case SlotKind::kFixed: {
      legal_.push_back(original_id);
      return;
    }
    case SlotKind::kSelectAgg: {
      legal_.push_back(original_id);
      if (!Modifiable(slot.kind) || budget < 1) return;
      // Aggregator replacements compatible with the (not yet re-decided)
      // column: restrict by the original column's type; the column slot then
      // keeps type compatibility for sum/avg.
      for (AggFunc f : CompatibleAggs(vocab_->schema().column(
               query_.select[static_cast<size_t>(slot.clause_index)].column))) {
        add(Token::Aggregator(f));
      }
      return;
    }
    case SlotKind::kSelectColumn: {
      legal_.push_back(original_id);
      if (!Modifiable(slot.kind) || budget < 1) return;
      // If the previous output token is an aggregator, respect sum/avg
      // numeric compatibility.
      AggFunc agg = AggFunc::kNone;
      if (!output_.empty() && output_.back().type == TokenType::kAggregator) {
        agg = output_.back().agg;
      }
      std::vector<int> choices;
      AppendColumnChoices(select_cols_used_,
                          ReservedColumns(SlotKind::kSelectColumn), &choices);
      for (int id : choices) {
        Token t = vocab_->IdToToken(id);
        const catalog::Column& col = vocab_->schema().column(t.column);
        if ((agg == AggFunc::kSum || agg == AggFunc::kAvg) && !IsNumeric(col)) {
          continue;
        }
        if (std::find(legal_.begin(), legal_.end(), id) == legal_.end()) {
          legal_.push_back(id);
        }
      }
      return;
    }
    case SlotKind::kFilterColumn: {
      legal_.push_back(original_id);
      // Re-binding the column forces the downstream value leaf to change
      // too, so gate by a budget of 2.
      if (!Modifiable(slot.kind) || budget < 2) return;
      AppendColumnChoices(filter_cols_used_,
                          ReservedColumns(SlotKind::kFilterColumn), &legal_);
      return;
    }
    case SlotKind::kOperator: {
      legal_.push_back(original_id);
      if (!Modifiable(slot.kind)) return;
      // If this predicate's value leaf is already owed an edit (column was
      // re-bound), keep one budget unit for it.
      int owed = 0;
      if (slot.pred_index >= 0 &&
          !(current_pred_column_[static_cast<size_t>(slot.pred_index)] ==
            query_.filters[static_cast<size_t>(slot.pred_index)].column)) {
        owed = 1;
      }
      if (budget < 1 + owed) return;
      for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                       CmpOp::kGt, CmpOp::kGe}) {
        add(Token::Operator(op));
      }
      return;
    }
    case SlotKind::kValue: {
      ColumnId bound =
          current_pred_column_[static_cast<size_t>(slot.pred_index)];
      bool rebound =
          !(bound == query_.filters[static_cast<size_t>(slot.pred_index)].column);
      if (rebound) {
        // Every bucket of the new column is an edit; budget was reserved.
        for (int b = 0; b < vocab_->values_per_column(); ++b) {
          add(Token::ValueTok(bound, b));
        }
      } else {
        legal_.push_back(original_id);
        if (budget >= 1) {
          for (int b = 0; b < vocab_->values_per_column(); ++b) {
            add(Token::ValueTok(bound, b));
          }
        }
      }
      return;
    }
    case SlotKind::kConjunction: {
      if (conjunction_decided_) {
        add(Token::Conj(conjunction_choice_));
        return;
      }
      legal_.push_back(original_id);
      if (!Modifiable(slot.kind)) return;
      // Flipping forces every later conjunction leaf to follow.
      int later = 0;
      for (size_t i = pos_ + 1; i < slots_.size(); ++i) {
        if (slots_[i].kind == SlotKind::kConjunction) ++later;
      }
      if (budget >= 1 + later) {
        add(Token::Conj(query_.conjunction == Conjunction::kAnd
                            ? Conjunction::kOr
                            : Conjunction::kAnd));
      }
      return;
    }
    case SlotKind::kOrderColumn: {
      legal_.push_back(original_id);
      if (!Modifiable(slot.kind) || budget < 1) return;
      if (!query_.group_by.empty()) {
        // Aggregated query: ORDER BY must stay within GROUP BY columns.
        for (ColumnId c : query_.group_by) {
          if (Contains(order_cols_used_, c) ||
              Contains(ReservedColumns(SlotKind::kOrderColumn), c)) {
            continue;
          }
          add(Token::Column(c));
        }
      } else {
        AppendColumnChoices(order_cols_used_,
                            ReservedColumns(SlotKind::kOrderColumn), &legal_);
      }
      return;
    }
    case SlotKind::kSelectExtension: {
      legal_.push_back(original_id);  // STOP
      if (!Modifiable(slot.kind) ||
          select_extensions_ >= kMaxExtensionsPerClause) {
        return;
      }
      bool any_available = false;
      bool numeric_available = false;
      for (ColumnId c : AllowedColumns()) {
        if (Contains(select_cols_used_, c)) continue;
        any_available = true;
        if (IsNumeric(vocab_->schema().column(c))) numeric_available = true;
      }
      if (!any_available) return;
      if (!query_has_aggregates_) {
        // Plain queries extend with bare payload columns; adding an
        // aggregate would require regrouping the whole query.
        if (budget >= 1) AppendColumnChoices(select_cols_used_, {}, &legal_);
      } else if (budget >= 2) {
        // Aggregated queries extend with aggregated items only, keeping the
        // bare-payload == GROUP BY invariant intact.
        add(Token::Aggregator(AggFunc::kCount));
        add(Token::Aggregator(AggFunc::kMin));
        add(Token::Aggregator(AggFunc::kMax));
        if (numeric_available) {
          add(Token::Aggregator(AggFunc::kSum));
          add(Token::Aggregator(AggFunc::kAvg));
        }
      }
      return;
    }
    case SlotKind::kWhereExtension: {
      legal_.push_back(original_id);  // STOP
      if (!Modifiable(slot.kind) ||
          where_extensions_ >= kMaxExtensionsPerClause || budget < 4) {
        return;
      }
      bool column_available = false;
      for (ColumnId c : AllowedColumns()) {
        if (!Contains(filter_cols_used_, c)) {
          column_available = true;
          break;
        }
      }
      if (!column_available) return;
      // A new predicate opens with its separator: a conjunction when filter
      // predicates exist (free to flip only while undecided), otherwise the
      // structural AND after the join block.
      bool have_filters = !query_.filters.empty() || where_extensions_ > 0;
      if (have_filters && !query_.filters.empty()) {
        if (conjunction_decided_) {
          add(Token::Conj(conjunction_choice_));
        } else if (query_.filters.size() == 1) {
          add(Token::Conj(Conjunction::kAnd));
          add(Token::Conj(Conjunction::kOr));
        } else {
          add(Token::Conj(query_.conjunction));
        }
      } else if (have_filters) {
        if (conjunction_decided_) {
          add(Token::Conj(conjunction_choice_));
        } else {
          add(Token::Conj(Conjunction::kAnd));
          add(Token::Conj(Conjunction::kOr));
        }
      } else {
        add(Token::Reserved(ReservedWord::kJoinAnd));
      }
      return;
    }
  }
}

void ReferenceTree::Advance(int token_id) {
  TRAP_CHECK(!Done());
  TRAP_CHECK_MSG(std::find(legal_.begin(), legal_.end(), token_id) != legal_.end(),
                 "token not in legitimate vocabulary");
  Token token = vocab_->IdToToken(token_id);
  const Slot& slot = slots_[pos_];

  // Extension sub-state transitions.
  if (ext_state_ == ExtState::kSelectNeedColumn) {
    output_.push_back(token);
    ++edit_used_;
    select_cols_used_.push_back(token.column);
    ++select_extensions_;
    ext_state_ = ExtState::kIdle;
    ComputeLegal();
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedColumn) {
    output_.push_back(token);
    ++edit_used_;
    ext_column_ = token.column;
    filter_cols_used_.push_back(token.column);
    ext_state_ = ExtState::kWhereNeedOp;
    ComputeLegal();
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedOp) {
    output_.push_back(token);
    ++edit_used_;
    ext_state_ = ExtState::kWhereNeedValue;
    ComputeLegal();
    return;
  }
  if (ext_state_ == ExtState::kWhereNeedValue) {
    output_.push_back(token);
    ++edit_used_;
    ++where_extensions_;
    ext_state_ = ExtState::kIdle;
    ComputeLegal();
    return;
  }

  switch (slot.kind) {
    case SlotKind::kSelectExtension: {
      if (token.type == TokenType::kSpecial) {
        ++pos_;  // STOP
      } else if (token.type == TokenType::kAggregator) {
        output_.push_back(token);
        ++edit_used_;
        ext_state_ = ExtState::kSelectNeedColumn;
      } else {
        output_.push_back(token);
        ++edit_used_;
        select_cols_used_.push_back(token.column);
        ++select_extensions_;
      }
      ComputeLegal();
      return;
    }
    case SlotKind::kWhereExtension: {
      if (token.type == TokenType::kSpecial) {
        ++pos_;  // STOP
      } else {
        // Separator (conjunction or structural AND).
        output_.push_back(token);
        ++edit_used_;
        if (token.type == TokenType::kConjunction) {
          conjunction_decided_ = true;
          conjunction_choice_ = token.conjunction;
        }
        ext_state_ = ExtState::kWhereNeedColumn;
      }
      ComputeLegal();
      return;
    }
    default:
      break;
  }

  // Ordinary slot: commit token, count the edit, apply look-ahead updates.
  output_.push_back(token);
  bool changed = !(token == slot.original);
  if (slot.kind == SlotKind::kConjunction) {
    // Flipping the first (deciding) conjunction leaf pre-pays the edits of
    // every later, now-forced conjunction leaf so the budget can never be
    // breached by forced updates downstream.
    if (!conjunction_decided_) {
      if (changed) {
        int later = 0;
        for (size_t i = pos_ + 1; i < slots_.size(); ++i) {
          if (slots_[i].kind == SlotKind::kConjunction) ++later;
        }
        edit_used_ += 1 + later;
      }
      conjunction_decided_ = true;
      conjunction_choice_ = token.conjunction;
    }
    // Forced (already decided) conjunction leaves were pre-paid.
  } else if (changed) {
    ++edit_used_;
  }
  TRAP_CHECK(edit_used_ <= epsilon_);

  switch (slot.kind) {
    case SlotKind::kSelectColumn:
      select_cols_used_.push_back(token.column);
      break;
    case SlotKind::kFilterColumn:
      filter_cols_used_.push_back(token.column);
      current_pred_column_[static_cast<size_t>(slot.pred_index)] = token.column;
      break;
    case SlotKind::kOrderColumn:
      order_cols_used_.push_back(token.column);
      break;
    default:
      break;
  }
  ++pos_;
  ComputeLegal();
}

sql::Query ReferenceTree::Materialize() const {
  TRAP_CHECK(Done());
  std::optional<sql::Query> q = sql::FromTokens(output_, *vocab_);
  TRAP_CHECK_MSG(q.has_value(), "reference tree produced unparseable output");
  return *q;
}

}  // namespace trap::trap
