#include "advisor/heuristic_advisors.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "advisor/candidates.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace trap::advisor {
namespace {

using common::EvalContext;
using common::Status;
using common::StatusOr;
using engine::Index;
using engine::IndexConfig;
using engine::WhatIfOptimizer;
using workload::Workload;

// Candidates that could ever fit the constraint on their own.
std::vector<Index> FeasibleCandidates(std::vector<Index> candidates,
                                      const TuningConstraint& constraint,
                                      const catalog::Schema& schema) {
  std::vector<Index> out;
  for (Index& i : candidates) {
    if (constraint.storage_budget_bytes <= 0 ||
        engine::IndexSizeBytes(i, schema) <= constraint.storage_budget_bytes) {
      out.push_back(std::move(i));
    }
  }
  return out;
}

// Greedy best configuration for a single query: repeatedly add the candidate
// with the largest cost reduction, up to `max_indexes` indexes. Each round
// probes every remaining candidate in one parallel what-if sweep.
StatusOr<IndexConfig> BestConfigForQuery(const WhatIfOptimizer& optimizer,
                                         const sql::Query& q,
                                         const std::vector<Index>& candidates,
                                         int max_indexes,
                                         const EvalContext& ctx) {
  IndexConfig config;
  TRAP_ASSIGN_OR_RETURN(double current, optimizer.TryQueryCost(q, config, ctx));
  for (int round = 0; round < max_indexes; ++round) {
    std::vector<const Index*> probed;
    std::vector<IndexConfig> nexts;
    for (const Index& cand : candidates) {
      if (config.Contains(cand)) continue;
      if (cand.table() < 0) continue;
      IndexConfig next = config;
      next.Add(cand);
      probed.push_back(&cand);
      nexts.push_back(std::move(next));
    }
    TRAP_ASSIGN_OR_RETURN(std::vector<double> costs,
                          optimizer.TryQueryCosts(q, nexts, ctx));
    const Index* best = nullptr;
    double best_cost = current;
    for (size_t i = 0; i < probed.size(); ++i) {
      if (costs[i] < best_cost - 1e-9) {
        best_cost = costs[i];
        best = probed[i];
      }
    }
    if (best == nullptr) break;
    config.Add(*best);
    current = best_cost;
  }
  return config;
}

// ---------------------------------------------------------------------------
// Extend
// ---------------------------------------------------------------------------

class ExtendAdvisor : public IndexAdvisor {
 public:
  ExtendAdvisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "Extend"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    std::vector<Index> singles =
        FeasibleCandidates(SingleColumnCandidates(w), constraint, schema);
    std::vector<IndexableColumn> columns = IndexableColumns(w);

    IndexConfig config;
    TRAP_ASSIGN_OR_RETURN(double base_cost,
                          optimizer_->TryWorkloadCost(w, IndexConfig(), ctx));
    double current = base_cost;

    // Pre-computed isolated benefits for the w/o-interaction ablation.
    std::map<uint64_t, double> isolated_benefit;
    auto isolated = [&](const Index& i) -> StatusOr<double> {
      IndexConfig only;
      only.Add(i);
      uint64_t key = only.Fingerprint();
      auto it = isolated_benefit.find(key);
      if (it != isolated_benefit.end()) return it->second;
      TRAP_ASSIGN_OR_RETURN(double cost,
                            optimizer_->TryWorkloadCost(w, only, ctx));
      double b = base_cost - cost;
      isolated_benefit.emplace(key, b);
      return b;
    };

    for (uint64_t round = 0;; ++round) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round", round);
      const EvalContext& rctx = round_span.ctx();
      // Enumerate legal moves first, then cost every resulting
      // configuration in one parallel what-if sweep; the sequential
      // selection below scans the results in enumeration order, so the
      // chosen move is identical to the old one-at-a-time loop.
      struct Move {
        Index add;               // index to add
        Index remove;            // replaced index (empty columns = none)
        double extra = 1.0;      // storage delta, bytes (>= 1)
      };
      std::vector<Move> moves;
      std::vector<IndexConfig> nexts;

      auto consider = [&](const Index& add, const Index* remove) {
        IndexConfig next = config;
        if (remove != nullptr) next.Remove(*remove);
        if (!FitsConstraint(next, add, constraint, schema)) return;
        double extra = static_cast<double>(engine::IndexSizeBytes(add, schema));
        if (remove != nullptr) {
          extra -= static_cast<double>(engine::IndexSizeBytes(*remove, schema));
        }
        extra = std::max(extra, 1.0);
        next.Add(add);
        moves.push_back(Move{add, remove != nullptr ? *remove : Index{}, extra});
        nexts.push_back(std::move(next));
      };

      for (const Index& cand : singles) {
        if (!config.Contains(cand)) consider(cand, nullptr);
      }
      if (options_.multi_column) {
        // Extension step: append one attribute to a selected index.
        for (const Index& sel : config.indexes()) {
          if (sel.NumColumns() >= options_.max_index_width) continue;
          for (const IndexableColumn& ic : columns) {
            if (ic.column.table != sel.table()) continue;
            if (std::find(sel.columns.begin(), sel.columns.end(), ic.column) !=
                sel.columns.end()) {
              continue;
            }
            Index extended = sel;
            extended.columns.push_back(ic.column);
            consider(extended, &sel);
          }
        }
      }

      std::vector<double> move_costs;
      if (options_.consider_interaction) {
        counters_.whatif_items->Add(
            static_cast<int64_t>(nexts.size() * w.queries.size()));
        TRAP_ASSIGN_OR_RETURN(move_costs,
                              optimizer_->TryWorkloadCosts(w, nexts, rctx));
      }

      std::optional<size_t> best;
      double best_ratio = 0.0;
      double best_new_cost = 0.0;
      for (size_t i = 0; i < moves.size(); ++i) {
        double benefit, new_cost;
        if (options_.consider_interaction) {
          new_cost = move_costs[i];
          benefit = current - new_cost;
        } else {
          TRAP_ASSIGN_OR_RETURN(double add_benefit, isolated(moves[i].add));
          double removed_benefit = 0.0;
          if (!moves[i].remove.columns.empty()) {
            TRAP_ASSIGN_OR_RETURN(removed_benefit, isolated(moves[i].remove));
          }
          benefit = add_benefit - removed_benefit;
          new_cost = current - benefit;
        }
        double ratio = benefit / moves[i].extra;
        if (benefit > 1e-9 && (!best.has_value() || ratio > best_ratio)) {
          best = i;
          best_ratio = ratio;
          best_new_cost = new_cost;
        }
      }
      if (!best.has_value()) break;
      const Move& chosen = moves[*best];
      if (!chosen.remove.columns.empty()) config.Remove(chosen.remove);
      config.Add(chosen.add);
      if (options_.consider_interaction) {
        current = best_new_cost;
      } else {
        TRAP_ASSIGN_OR_RETURN(current,
                              optimizer_->TryWorkloadCost(w, config, rctx));
      }
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("Extend");
};

// ---------------------------------------------------------------------------
// DB2Advis
// ---------------------------------------------------------------------------

class Db2Advisor : public IndexAdvisor {
 public:
  Db2Advisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "DB2Advis"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    std::vector<Index> candidates = FeasibleCandidates(
        AllCandidates(w, schema, options_.multi_column,
                      options_.max_index_width),
        constraint, schema);
    // One-time what-if evaluation with ALL candidates hypothetically built.
    counters_.rounds->Add();
    counters_.whatif_items->Add(static_cast<int64_t>(w.queries.size()));
    IndexConfig all(candidates);
    std::map<uint64_t, double> benefit;  // per-index fingerprint
    auto fp = [](const Index& i) {
      IndexConfig c;
      c.Add(i);
      return c.Fingerprint();
    };
    // Per-query planning is independent; fan it out and merge the benefit
    // attributions serially in query order (deterministic accumulation).
    // Statuses are pre-filled kCancelled so fast-drained iterations stay
    // accounted for; the first error in query order wins.
    struct QueryShare {
      double improvement = 0.0;
      std::set<uint64_t> used;
    };
    std::vector<QueryShare> shares(w.queries.size());
    std::vector<Status> statuses(
        w.queries.size(),
        Status::Cancelled("skipped: evaluation cancelled"));
    common::ParallelFor(
        w.queries.size(),
        [&](size_t qi) {
          const workload::WorkloadQuery& wq = w.queries[qi];
          StatusOr<double> base =
              optimizer_->TryQueryCost(wq.query, IndexConfig(), ctx);
          if (!base.ok()) {
            statuses[qi] = base.status();
            return;
          }
          std::unique_ptr<engine::PlanNode> plan =
              optimizer_->Plan(wq.query, all, ctx);
          shares[qi].improvement =
              std::max(0.0, *base - plan->cost) * wq.weight;
          std::vector<const engine::PlanNode*> nodes;
          engine::CollectNodes(*plan, &nodes);
          for (const engine::PlanNode* n : nodes) {
            if (n->index != nullptr) shares[qi].used.insert(fp(*n->index));
          }
          statuses[qi] = Status::Ok();
        },
        ctx.cancel);
    for (const Status& s : statuses) TRAP_RETURN_IF_ERROR(s);
    for (const QueryShare& share : shares) {
      if (share.used.empty()) continue;
      for (uint64_t u : share.used) {
        benefit[u] += share.improvement / static_cast<double>(share.used.size());
      }
    }
    // Greedy knapsack by benefit-per-storage, no re-evaluation.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const Index& a, const Index& b) {
                       double ba = benefit.count(fp(a)) ? benefit.at(fp(a)) : 0.0;
                       double bb = benefit.count(fp(b)) ? benefit.at(fp(b)) : 0.0;
                       return ba / static_cast<double>(engine::IndexSizeBytes(a, schema)) >
                              bb / static_cast<double>(engine::IndexSizeBytes(b, schema));
                     });
    IndexConfig config;
    for (const Index& cand : candidates) {
      double b = benefit.count(fp(cand)) ? benefit.at(fp(cand)) : 0.0;
      if (b <= 1e-9) continue;
      if (FitsConstraint(config, cand, constraint, schema)) config.Add(cand);
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("DB2Advis");
};

// ---------------------------------------------------------------------------
// AutoAdmin
// ---------------------------------------------------------------------------

class AutoAdminAdvisor : public IndexAdvisor {
 public:
  AutoAdminAdvisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "AutoAdmin"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    // Phase 1: candidate selection — the best configuration per query.
    std::set<Index> seeds;
    for (const workload::WorkloadQuery& wq : w.queries) {
      workload::Workload single;
      single.queries.push_back(wq);
      std::vector<Index> per_query = FeasibleCandidates(
          AllCandidates(single, schema, options_.multi_column,
                        options_.max_index_width),
          constraint, schema);
      TRAP_ASSIGN_OR_RETURN(
          IndexConfig best,
          BestConfigForQuery(*optimizer_, wq.query, per_query,
                             /*max_indexes=*/2, ctx));
      for (const Index& i : best.indexes()) seeds.insert(i);
    }
    std::vector<Index> candidates(seeds.begin(), seeds.end());

    // Phase 2: greedy enumeration over the workload.
    IndexConfig config;
    TRAP_ASSIGN_OR_RETURN(double base_cost,
                          optimizer_->TryWorkloadCost(w, config, ctx));
    double current = base_cost;
    int limit = constraint.max_indexes > 0 ? constraint.max_indexes
                                           : static_cast<int>(candidates.size());
    for (int round = 0; round < limit; ++round) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round",
                                static_cast<uint64_t>(round));
      const EvalContext& rctx = round_span.ctx();
      // Probe every fitting candidate in one parallel sweep, then pick the
      // winner scanning the results in candidate order (identical to the
      // old serial loop).
      std::vector<const Index*> probed;
      std::vector<IndexConfig> evals;
      for (const Index& cand : candidates) {
        if (!FitsConstraint(config, cand, constraint, schema)) continue;
        probed.push_back(&cand);
        if (options_.consider_interaction) {
          IndexConfig next = config;
          next.Add(cand);
          evals.push_back(std::move(next));
        } else {
          IndexConfig only;
          only.Add(cand);
          evals.push_back(std::move(only));
        }
      }
      counters_.whatif_items->Add(
          static_cast<int64_t>(evals.size() * w.queries.size()));
      TRAP_ASSIGN_OR_RETURN(std::vector<double> eval_costs,
                            optimizer_->TryWorkloadCosts(w, evals, rctx));
      const Index* best = nullptr;
      double best_cost = current;
      for (size_t i = 0; i < probed.size(); ++i) {
        double cost = options_.consider_interaction
                          ? eval_costs[i]
                          : current - (base_cost - eval_costs[i]);
        if (cost < best_cost - 1e-9) {
          best_cost = cost;
          best = probed[i];
        }
      }
      if (best == nullptr) break;
      config.Add(*best);
      if (options_.consider_interaction) {
        current = best_cost;
      } else {
        TRAP_ASSIGN_OR_RETURN(current,
                              optimizer_->TryWorkloadCost(w, config, rctx));
      }
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("AutoAdmin");
};

// ---------------------------------------------------------------------------
// Drop
// ---------------------------------------------------------------------------

class DropAdvisor : public IndexAdvisor {
 public:
  DropAdvisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "Drop"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    std::vector<Index> candidates = FeasibleCandidates(
        options_.multi_column
            ? AllCandidates(w, schema, true, options_.max_index_width)
            : SingleColumnCandidates(w),
        constraint, schema);
    IndexConfig config(candidates);
    TRAP_ASSIGN_OR_RETURN(double base_cost,
                          optimizer_->TryWorkloadCost(w, IndexConfig(), ctx));

    auto over_constraint = [&]() {
      if (constraint.max_indexes > 0 && config.size() > constraint.max_indexes) {
        return true;
      }
      return constraint.storage_budget_bytes > 0 &&
             config.TotalSizeBytes(schema) > constraint.storage_budget_bytes;
    };

    uint64_t round = 0;
    while (config.size() > 0 && over_constraint()) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round", round++);
      const EvalContext& rctx = round_span.ctx();
      // One parallel sweep over every drop candidate per round.
      std::vector<IndexConfig> evals;
      evals.reserve(static_cast<size_t>(config.size()));
      for (const Index& i : config.indexes()) {
        if (options_.consider_interaction) {
          IndexConfig next = config;
          next.Remove(i);
          evals.push_back(std::move(next));
        } else {
          IndexConfig only;
          only.Add(i);
          evals.push_back(std::move(only));
        }
      }
      counters_.whatif_items->Add(
          static_cast<int64_t>(evals.size() * w.queries.size()));
      TRAP_ASSIGN_OR_RETURN(std::vector<double> eval_costs,
                            optimizer_->TryWorkloadCosts(w, evals, rctx));
      const Index* victim = nullptr;
      double best_cost = 0.0;
      for (size_t k = 0; k < evals.size(); ++k) {
        // Smaller isolated benefit -> cheaper to drop; encode as cost.
        double cost = options_.consider_interaction
                          ? eval_costs[k]
                          : base_cost - eval_costs[k];
        if (victim == nullptr || cost < best_cost) {
          best_cost = cost;
          victim = &config.indexes()[k];
        }
      }
      Index to_remove = *victim;
      config.Remove(to_remove);
    }
    // Final pruning: drop indexes that provide no benefit at all. The old
    // loop stopped at the first useless index; sweeping all of them in
    // parallel and taking the first match picks the same victim.
    while (true) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round", round++);
      const EvalContext& rctx = round_span.ctx();
      TRAP_ASSIGN_OR_RETURN(double current,
                            optimizer_->TryWorkloadCost(w, config, rctx));
      std::vector<IndexConfig> evals;
      evals.reserve(static_cast<size_t>(config.size()));
      for (const Index& i : config.indexes()) {
        IndexConfig next = config;
        next.Remove(i);
        evals.push_back(std::move(next));
      }
      counters_.whatif_items->Add(
          static_cast<int64_t>((evals.size() + 1) * w.queries.size()));
      TRAP_ASSIGN_OR_RETURN(std::vector<double> eval_costs,
                            optimizer_->TryWorkloadCosts(w, evals, rctx));
      const Index* useless = nullptr;
      for (size_t k = 0; k < evals.size(); ++k) {
        if (eval_costs[k] <= current + 1e-9) {
          useless = &config.indexes()[k];
          break;
        }
      }
      if (useless == nullptr) break;
      Index to_remove = *useless;
      config.Remove(to_remove);
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("Drop");
};

// ---------------------------------------------------------------------------
// Relaxation
// ---------------------------------------------------------------------------

class RelaxationAdvisor : public IndexAdvisor {
 public:
  RelaxationAdvisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "Relaxation"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    // Start from the union of per-query best configurations.
    std::set<Index> seeds;
    for (const workload::WorkloadQuery& wq : w.queries) {
      workload::Workload single;
      single.queries.push_back(wq);
      std::vector<Index> per_query =
          AllCandidates(single, schema, options_.multi_column,
                        options_.max_index_width);
      TRAP_ASSIGN_OR_RETURN(
          IndexConfig best,
          BestConfigForQuery(*optimizer_, wq.query, per_query, 2, ctx));
      for (const Index& i : best.indexes()) seeds.insert(i);
    }
    IndexConfig config(std::vector<Index>(seeds.begin(), seeds.end()));

    auto storage = [&]() { return config.TotalSizeBytes(schema); };
    auto over = [&]() {
      return (constraint.storage_budget_bytes > 0 &&
              storage() > constraint.storage_budget_bytes) ||
             (constraint.max_indexes > 0 &&
              config.size() > constraint.max_indexes);
    };

    TRAP_ASSIGN_OR_RETURN(double current,
                          optimizer_->TryWorkloadCost(w, config, ctx));
    uint64_t round = 0;
    while (config.size() > 0 && over()) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round", round++);
      const EvalContext& rctx = round_span.ctx();
      // Collect every legal relaxation, cost them in one parallel sweep,
      // then select scanning in enumeration order (same winner as the old
      // serial consider() calls).
      std::vector<IndexConfig> relaxations;
      std::vector<int64_t> saved_bytes;
      auto consider = [&](IndexConfig next) {
        int64_t saved = storage() - next.TotalSizeBytes(schema);
        if (saved <= 0 && constraint.max_indexes == 0) return;
        if (next.size() >= config.size() && constraint.max_indexes > 0 &&
            config.size() > constraint.max_indexes) {
          return;  // must shrink the count when over the count constraint
        }
        relaxations.push_back(std::move(next));
        saved_bytes.push_back(saved);
      };
      for (const Index& i : config.indexes()) {
        // Removal.
        IndexConfig removed = config;
        removed.Remove(i);
        consider(removed);
        // Prefix narrowing.
        if (i.NumColumns() > 1) {
          IndexConfig narrowed = config;
          narrowed.Remove(i);
          Index prefix = i;
          prefix.columns.pop_back();
          narrowed.Add(prefix);
          consider(narrowed);
        }
        // Merging with another index on the same table.
        for (const Index& j : config.indexes()) {
          if (i == j || i.table() != j.table()) continue;
          Index merged = i;
          for (catalog::ColumnId c : j.columns) {
            if (std::find(merged.columns.begin(), merged.columns.end(), c) ==
                merged.columns.end()) {
              merged.columns.push_back(c);
            }
          }
          if (merged.NumColumns() > options_.max_index_width) continue;
          IndexConfig mergedcfg = config;
          mergedcfg.Remove(i);
          mergedcfg.Remove(j);
          mergedcfg.Add(merged);
          consider(mergedcfg);
        }
      }
      counters_.whatif_items->Add(
          static_cast<int64_t>(relaxations.size() * w.queries.size()));
      TRAP_ASSIGN_OR_RETURN(std::vector<double> relax_costs,
                            optimizer_->TryWorkloadCosts(w, relaxations, rctx));
      std::optional<size_t> best;
      double best_score = 0.0;
      for (size_t k = 0; k < relaxations.size(); ++k) {
        double penalty = relax_costs[k] - current;
        double score = penalty / std::max<double>(
                                     1.0, static_cast<double>(saved_bytes[k]));
        if (!best.has_value() || score < best_score) {
          best = k;
          best_score = score;
        }
      }
      if (!best.has_value()) break;
      config = relaxations[*best];
      current = relax_costs[*best];
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("Relaxation");
};

// ---------------------------------------------------------------------------
// DTA (anytime)
// ---------------------------------------------------------------------------

class DtaAdvisor : public IndexAdvisor {
 public:
  DtaAdvisor(const WhatIfOptimizer& optimizer, HeuristicOptions options)
      : optimizer_(&optimizer), options_(options) {}

  std::string name() const override { return "DTA"; }

  StatusOr<IndexConfig> TryRecommend(const Workload& w,
                                     const TuningConstraint& constraint,
                                     const EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    const catalog::Schema& schema = optimizer_->SchemaFor(ctx);
    constexpr int kEvaluationBudget = 4000;  // anytime bound on what-if calls
    int evaluations = 0;

    std::vector<Index> candidates = FeasibleCandidates(
        AllCandidates(w, schema, options_.multi_column,
                      options_.max_index_width),
        constraint, schema);
    // Seed with per-query winners so good multi-column indexes surface early.
    std::set<Index> priority;
    for (const workload::WorkloadQuery& wq : w.queries) {
      workload::Workload single;
      single.queries.push_back(wq);
      TRAP_ASSIGN_OR_RETURN(
          IndexConfig best,
          BestConfigForQuery(
              *optimizer_, wq.query,
              FeasibleCandidates(AllCandidates(single, schema,
                                               options_.multi_column,
                                               options_.max_index_width),
                                 constraint, schema),
              1, ctx));
      for (const Index& i : best.indexes()) priority.insert(i);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const Index& a, const Index& b) {
                       return priority.count(a) > priority.count(b);
                     });

    IndexConfig config;
    TRAP_ASSIGN_OR_RETURN(double base_cost,
                          optimizer_->TryWorkloadCost(w, config, ctx));
    double current = base_cost;
    // Greedy additions. Each round batches the first budget-many fitting
    // candidates into one parallel sweep — the same prefix the old serial
    // loop would have evaluated before exhausting the anytime budget.
    uint64_t round = 0;
    while (evaluations < kEvaluationBudget) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      counters_.rounds->Add();
      obs::TraceSpan round_span(ctx, "advisor.round", round++);
      const EvalContext& rctx = round_span.ctx();
      std::vector<const Index*> probed;
      std::vector<IndexConfig> evals;
      for (const Index& cand : candidates) {
        if (!FitsConstraint(config, cand, constraint, schema)) continue;
        if (evaluations + static_cast<int>(probed.size()) >=
            kEvaluationBudget) {
          break;
        }
        probed.push_back(&cand);
        if (options_.consider_interaction) {
          IndexConfig next = config;
          next.Add(cand);
          evals.push_back(std::move(next));
        } else {
          IndexConfig only;
          only.Add(cand);
          evals.push_back(std::move(only));
        }
      }
      counters_.whatif_items->Add(
          static_cast<int64_t>(evals.size() * w.queries.size()));
      TRAP_ASSIGN_OR_RETURN(std::vector<double> eval_costs,
                            optimizer_->TryWorkloadCosts(w, evals, rctx));
      evaluations += static_cast<int>(probed.size());
      const Index* best = nullptr;
      double best_ratio = 0.0;
      double best_cost = current;
      for (size_t k = 0; k < probed.size(); ++k) {
        double cost = options_.consider_interaction
                          ? eval_costs[k]
                          : current - (base_cost - eval_costs[k]);
        double ratio =
            (current - cost) /
            static_cast<double>(engine::IndexSizeBytes(*probed[k], schema));
        if (current - cost > 1e-9 && ratio > best_ratio) {
          best_ratio = ratio;
          best_cost = cost;
          best = probed[k];
        }
      }
      if (best == nullptr) break;
      config.Add(*best);
      if (options_.consider_interaction) {
        current = best_cost;
      } else {
        TRAP_ASSIGN_OR_RETURN(current,
                              optimizer_->TryWorkloadCost(w, config, rctx));
      }
    }
    // One anytime swap pass.
    for (const Index& sel : std::vector<Index>(config.indexes())) {
      if (evaluations >= kEvaluationBudget) break;
      for (const Index& cand : candidates) {
        if (config.Contains(cand)) continue;
        IndexConfig next = config;
        next.Remove(sel);
        if (!FitsConstraint(next, cand, constraint, schema)) continue;
        next.Add(cand);
        TRAP_ASSIGN_OR_RETURN(double cost,
                              optimizer_->TryWorkloadCost(w, next, ctx));
        ++evaluations;
        if (cost < current - 1e-9) {
          config = next;
          current = cost;
          break;
        }
        if (evaluations >= kEvaluationBudget) break;
      }
    }
    return config;
  }

 private:
  const WhatIfOptimizer* optimizer_;
  HeuristicOptions options_;
  obs::AdvisorCounters counters_ = obs::AdvisorCounters::For("DTA");
};

}  // namespace

std::unique_ptr<IndexAdvisor> MakeExtend(const WhatIfOptimizer& optimizer,
                                         HeuristicOptions options) {
  return std::make_unique<ExtendAdvisor>(optimizer, options);
}
std::unique_ptr<IndexAdvisor> MakeDb2Advis(const WhatIfOptimizer& optimizer,
                                           HeuristicOptions options) {
  return std::make_unique<Db2Advisor>(optimizer, options);
}
std::unique_ptr<IndexAdvisor> MakeAutoAdmin(const WhatIfOptimizer& optimizer,
                                            HeuristicOptions options) {
  return std::make_unique<AutoAdminAdvisor>(optimizer, options);
}
std::unique_ptr<IndexAdvisor> MakeDrop(const WhatIfOptimizer& optimizer,
                                       HeuristicOptions options) {
  return std::make_unique<DropAdvisor>(optimizer, options);
}
std::unique_ptr<IndexAdvisor> MakeRelaxation(const WhatIfOptimizer& optimizer,
                                             HeuristicOptions options) {
  return std::make_unique<RelaxationAdvisor>(optimizer, options);
}
std::unique_ptr<IndexAdvisor> MakeDta(const WhatIfOptimizer& optimizer,
                                      HeuristicOptions options) {
  return std::make_unique<DtaAdvisor>(optimizer, options);
}

}  // namespace trap::advisor
