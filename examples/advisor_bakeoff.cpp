// Advisor bakeoff: rank all ten index advisors by robustness against the
// same adversarial drift, mirroring the paper's headline assessment at a
// miniature scale. Heuristic advisors are measured against the no-index
// baseline; learning-based advisors against their Table III pairings.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "advisor/evaluation.h"
#include "catalog/datasets.h"
#include "trap/perturber.h"
#include "workload/generator.h"

int main() {
  using namespace trap;
  namespace trapcore = ::trap::trap;

  catalog::Schema schema = catalog::MakeTpcH(0.15);
  sql::Vocabulary vocab(schema, 8);
  engine::WhatIfOptimizer optimizer(schema);
  engine::TrueCostModel truth(schema);
  advisor::TuningConstraint constraint =
      advisor::TuningConstraint::IndexCount(4, schema.DataSizeBytes() / 2);

  workload::GeneratorOptions gopt;
  gopt.max_tables = 2;
  gopt.max_filters = 3;
  workload::QueryGenerator gen(vocab, gopt, 77);
  std::vector<sql::Query> pool = gen.GeneratePool(50);
  common::Rng rng(78);
  std::vector<workload::Workload> training;
  for (int i = 0; i < 3; ++i) {
    training.push_back(workload::SampleWorkload(pool, 4, rng));
  }
  std::vector<workload::Workload> tests;
  for (int i = 0; i < 2; ++i) {
    tests.push_back(workload::SampleWorkload(pool, 4, rng));
  }

  advisor::AdvisorSuite suite(optimizer);
  std::printf("training the learning-based advisors (SWIRL, DRLindex, DQN)...\n");
  suite.TrainLearners(training, constraint);

  gbdt::LearnedUtilityModel utility(optimizer, truth);
  utility.Train(pool, {engine::IndexConfig()});
  advisor::RobustnessEvaluator evaluator(optimizer, truth);

  struct Row {
    std::string name;
    double mean_iudr = 0.0;
  };
  std::vector<Row> rows;
  for (const std::string& name : advisor::AdvisorSuite::AllNames()) {
    advisor::IndexAdvisor* victim = suite.advisor(name);
    advisor::IndexAdvisor* baseline = suite.baseline_for(name);

    trapcore::GeneratorConfig config;
    config.method = trapcore::GenerationMethod::kTrap;
    config.constraint = trapcore::PerturbationConstraint::kColumnConsistent;
    config.epsilon = 5;
    config.agent.embed_dim = 24;
    config.agent.hidden_dim = 24;
    config.pretrain.num_pairs = 80;
    config.pretrain.epochs = 1;
    config.rl.epochs = 3;
    config.rl.workloads_per_epoch = 2;
    config.rl.theta = 0.02;
    config.seed = 0xbbb ^ std::hash<std::string>{}(name);
    trapcore::AdversarialWorkloadGenerator generator(vocab, config);
    generator.Fit(victim, baseline, &optimizer, &utility, pool, training,
                  constraint);

    double sum = 0.0;
    int n = 0;
    for (const workload::Workload& w : tests) {
      double u = evaluator.IndexUtility(*victim, baseline, w, constraint);
      if (u <= 0.02) continue;
      double u_prime = evaluator.IndexUtility(
          *victim, baseline, generator.Generate(w), constraint);
      sum += advisor::RobustnessEvaluator::Iudr(u, u_prime);
      ++n;
    }
    rows.push_back(Row{name, n > 0 ? sum / n : 0.0});
    std::printf("  assessed %-10s (eligible workloads: %d)\n", name.c_str(), n);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mean_iudr < b.mean_iudr; });
  std::printf("\nrobustness ranking (smaller IUDR = more robust):\n");
  std::printf("%-12s %8s\n", "advisor", "IUDR");
  for (const Row& r : rows) {
    std::printf("%-12s %8.4f\n", r.name.c_str(), r.mean_iudr);
  }
  return 0;
}
