// Part of the deliberate include cycle a -> b -> c -> a exercised by
// lint_test's CycleTest. Never compiled; only lexed by the linter.
#pragma once

#include "c.h"

inline int FixtureB() { return 2; }
