#ifndef TRAP_ADVISOR_EVALUATION_H_
#define TRAP_ADVISOR_EVALUATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "engine/true_cost.h"

namespace trap::advisor {

// A structured record of one advisor failure survived by the evaluation
// runtime: which advisor failed, the fault site (when the Status originated
// from an injected fault), the final Status, how many attempts were made,
// and whether the campaign degraded to the no-index baseline. Serialized
// into BenchReport JSON by the bench harness.
struct FailureRecord {
  std::string advisor;
  std::string site;     // fault-site name, or "" when not fault-originated
  common::StatusCode code = common::StatusCode::kInternal;
  std::string message;
  int attempts = 0;
  bool degraded = false;
};

// Deterministic retry-with-backoff policy. Backoff consumes steps from the
// caller's CancelToken budget (never wall clock); the per-attempt jitter is
// a pure function of (seed, attempt), so the whole retry trajectory is
// reproducible bit-for-bit.
struct RetryPolicy {
  int max_attempts = 3;               // total tries, including the first
  std::uint64_t backoff_base_steps = 16;
  std::uint64_t seed = 0x5ba0;        // jitter stream

  // Steps charged before retry attempt `attempt` (1-based): exponential
  // base plus seeded jitter in [0, base): base * 2^(attempt-1) + jitter.
  std::uint64_t BackoffSteps(int attempt) const;
};

// Outcome of RecommendWithRetry: `config` is the recommendation on success
// or the empty no-index fallback after degradation; `status` is OK exactly
// when a (possibly retried) attempt succeeded.
struct RecommendOutcome {
  engine::IndexConfig config;
  common::Status status;
  int attempts = 0;
  bool degraded = false;
};

// Runs advisor.TryRecommend under `ctx`, retrying retryable failures
// (kFaultInjected, kInternal) with deterministic backoff. kDeadlineExceeded,
// kCancelled, and kInvalidArgument are never retried: the budget is spent
// or the call can never succeed. When every attempt fails, the outcome
// carries kResourceExhausted (retry budget spent; the last attempt's status
// is appended to the message), degraded = true, and the empty config --
// the caller keeps running against the no-index baseline instead of
// crashing. Each attempt re-salts the EvalContext so probabilistic faults
// redraw (a p<1 fault can be retried through; a p=1 fault degrades).
RecommendOutcome RecommendWithRetry(IndexAdvisor& advisor,
                                    const workload::Workload& w,
                                    const TuningConstraint& constraint,
                                    const common::EvalContext& ctx,
                                    const RetryPolicy& policy = {});

// Builds the structured record for a failed outcome (status not OK),
// extracting the fault-site name from injected-fault messages.
FailureRecord MakeFailureRecord(const std::string& advisor_name,
                                const RecommendOutcome& outcome);

// Index utility and IUDR (Definitions 3.2 / 3.3). Costs are measured with
// the true-cost oracle (the "actual runtime" of this reproduction), while
// advisors internally rely on what-if estimates — exactly the paper's
// asymmetry.
class RobustnessEvaluator {
 public:
  RobustnessEvaluator(const engine::WhatIfOptimizer& optimizer,
                      const engine::TrueCostModel& truth);

  // u(W, d, f) = 1 - c(W, d, f(W)) / c(W, d, Ib(W)); `baseline` == nullptr
  // means Ib is the empty configuration (heuristic advisors).
  double IndexUtility(IndexAdvisor& advisor, IndexAdvisor* baseline,
                      const workload::Workload& w,
                      const TuningConstraint& constraint) const;

  // Fallible utility under `ctx`: advisor and baseline recommendations run
  // through RecommendWithRetry; a degraded advisor scores against its
  // fallback config (utility 0 against an empty baseline) rather than
  // aborting, and a non-OK Status is returned only when the evaluation
  // itself (not the advisor) cannot proceed.
  common::StatusOr<double> TryIndexUtility(
      IndexAdvisor& advisor, IndexAdvisor* baseline,
      const workload::Workload& w, const TuningConstraint& constraint,
      const common::EvalContext& ctx, const RetryPolicy& policy = {},
      std::vector<FailureRecord>* failures = nullptr) const;

  // IUDR = 1 - u(W') / u(W); higher means a larger performance drop.
  static double Iudr(double utility_original, double utility_perturbed) {
    if (utility_original == 0.0) return 0.0;
    return 1.0 - utility_perturbed / utility_original;
  }

  const engine::WhatIfOptimizer& optimizer() const { return *optimizer_; }
  const engine::TrueCostModel& truth() const { return *truth_; }

 private:
  const engine::WhatIfOptimizer* optimizer_;
  const engine::TrueCostModel* truth_;
};

// The ten assessed advisors wired with their Table III configurations and
// baseline pairings (heuristics against the null set; SWIRL vs Extend,
// DRLindex vs Drop, DQN and MCTS vs AutoAdmin). Learning-based advisors
// must be trained once via TrainLearners before assessment.
class AdvisorSuite {
 public:
  // Budget knobs for the learning-based members (benches on small machines
  // shrink these; the defaults follow the per-advisor option defaults).
  struct SuiteOptions {
    int rl_episodes = 300;      // SWIRL / DRLindex / DQN training episodes
    int max_actions = 48;       // candidate action-space cap
    int mcts_iterations = 300;
  };

  explicit AdvisorSuite(const engine::WhatIfOptimizer& optimizer,
                        uint64_t seed = 0x5417e);
  AdvisorSuite(const engine::WhatIfOptimizer& optimizer, uint64_t seed,
               SuiteOptions options);

  // Names in Table III order.
  static const std::vector<std::string>& AllNames();

  void TrainLearners(const std::vector<workload::Workload>& training,
                     const TuningConstraint& constraint);

  // Trains each learner under its Table III constraint kind: SWIRL with the
  // storage budget, DRLindex/DQN with the index-count constraint.
  void TrainLearners(const std::vector<workload::Workload>& training,
                     const TuningConstraint& storage_constraint,
                     const TuningConstraint& count_constraint);

  IndexAdvisor* advisor(const std::string& name);
  // nullptr when the baseline Ib is the empty configuration.
  IndexAdvisor* baseline_for(const std::string& name);

  bool is_learning(const std::string& name) const;

 private:
  std::map<std::string, std::unique_ptr<IndexAdvisor>> advisors_;
  std::map<std::string, std::string> baseline_;  // name -> baseline name
};

}  // namespace trap::advisor

#endif  // TRAP_ADVISOR_EVALUATION_H_
