#ifndef TRAP_ANALYSIS_CAUSAL_H_
#define TRAP_ANALYSIS_CAUSAL_H_

#include <vector>

namespace trap::analysis {

// Lightweight causal-score estimators in the spirit of the causal discovery
// toolbox used for Fig. 16(a). Each estimates whether X (occurrence of a
// query-change type, typically binary) is a cause of larger Y (IUDR); a
// positive score supports "X causes the decrease of index utility".
enum class CausalModel {
  kRegression,  // standardized regression coefficient (Pearson)
  kAnm,         // additive-noise-model asymmetry
  kCds,         // conditional-distribution shift of Y given X
};

const char* CausalModelName(CausalModel m);

// Computes the causation score of X -> Y for the chosen model. Returns 0
// when either variable is constant.
double CausationScore(CausalModel model, const std::vector<double>& x,
                      const std::vector<double>& y);

}  // namespace trap::analysis

#endif  // TRAP_ANALYSIS_CAUSAL_H_
