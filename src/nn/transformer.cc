#include "nn/transformer.h"

#include <cmath>

namespace trap::nn {

TransformerEncoderLayer::TransformerEncoderLayer(ParameterStore* store,
                                                 const TransformerConfig& cfg,
                                                 common::Rng& rng)
    : cfg_(cfg),
      wo_(store, cfg.dim, cfg.dim, rng),
      ff1_(store, cfg.dim, cfg.ff_dim, rng),
      ff2_(store, cfg.ff_dim, cfg.dim, rng),
      ln1_gain_(store->CreateConst(1, cfg.dim, 1.0)),
      ln1_bias_(store->CreateZero(1, cfg.dim)),
      ln2_gain_(store->CreateConst(1, cfg.dim, 1.0)),
      ln2_bias_(store->CreateZero(1, cfg.dim)) {
  TRAP_CHECK(cfg.dim % cfg.num_heads == 0);
  int head_dim = cfg.dim / cfg.num_heads;
  for (int h = 0; h < cfg.num_heads; ++h) {
    wq_.emplace_back(store, cfg.dim, head_dim, rng);
    wk_.emplace_back(store, cfg.dim, head_dim, rng);
    wv_.emplace_back(store, cfg.dim, head_dim, rng);
  }
}

Graph::VarId TransformerEncoderLayer::Forward(Graph& g, Graph::VarId x) const {
  int head_dim = cfg_.dim / cfg_.num_heads;
  Graph::VarId normed = g.LayerNorm(x, ln1_gain_, ln1_bias_);
  // Multi-head self-attention; heads concatenated along columns.
  Graph::VarId heads = -1;
  for (int h = 0; h < cfg_.num_heads; ++h) {
    Graph::VarId q = wq_[static_cast<size_t>(h)].Forward(g, normed);
    Graph::VarId k = wk_[static_cast<size_t>(h)].Forward(g, normed);
    Graph::VarId v = wv_[static_cast<size_t>(h)].Forward(g, normed);
    Graph::VarId scores =
        g.Scale(g.MatMul(q, g.Transpose(k)), 1.0 / std::sqrt(head_dim));
    Graph::VarId attn = g.Softmax(scores);
    Graph::VarId out = g.MatMul(attn, v);
    heads = (heads < 0) ? out : g.ConcatCols(heads, out);
  }
  Graph::VarId attn_out = wo_.Forward(g, heads);
  Graph::VarId x1 = g.Add(x, attn_out);  // residual
  // Feed-forward block.
  Graph::VarId normed2 = g.LayerNorm(x1, ln2_gain_, ln2_bias_);
  Graph::VarId ff = ff2_.Forward(g, g.Relu(ff1_.Forward(g, normed2)));
  return g.Add(x1, ff);
}

TransformerEncoder::TransformerEncoder(ParameterStore* store,
                                       const TransformerConfig& cfg,
                                       common::Rng& rng)
    : cfg_(cfg) {
  for (int i = 0; i < cfg.num_layers; ++i) {
    layers_.emplace_back(store, cfg, rng);
  }
}

Graph::VarId TransformerEncoder::Forward(Graph& g, Graph::VarId x) const {
  Graph::VarId h = x;
  for (const TransformerEncoderLayer& layer : layers_) {
    h = layer.Forward(g, h);
  }
  return h;
}

Matrix PositionalEncoding(int n, int dim) {
  Matrix pe(n, dim);
  for (int pos = 0; pos < n; ++pos) {
    for (int i = 0; i < dim; ++i) {
      double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / static_cast<double>(dim));
      pe.at(pos, i) = (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

}  // namespace trap::nn
