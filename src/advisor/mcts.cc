#include "advisor/mcts.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "advisor/candidates.h"
#include "common/rng.h"

namespace trap::advisor {
namespace {

class MctsAdvisor : public IndexAdvisor {
 public:
  MctsAdvisor(const engine::WhatIfOptimizer& optimizer, MctsOptions options)
      : optimizer_(&optimizer), options_(options), rng_(options.seed) {}

  std::string name() const override { return "MCTS"; }

  common::StatusOr<engine::IndexConfig> TryRecommend(
      const workload::Workload& w, const TuningConstraint& constraint,
      const common::EvalContext& ctx) override {
    TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
    // Pinned once per recommend call: rollouts below must see the same
    // snapshot-resolved schema (and stats epoch) as candidate generation.
    schema_ = &optimizer_->SchemaFor(ctx);
    ctx_ = ctx;
    const catalog::Schema& schema = *schema_;
    candidates_ = AllCandidates(w, schema, options_.multi_column,
                                options_.max_width);
    workload_ = &w;
    constraint_ = constraint;
    TRAP_ASSIGN_OR_RETURN(
        base_cost_, optimizer_->TryWorkloadCost(w, engine::IndexConfig(), ctx));
    nodes_.clear();

    // The rollouts below go through the legacy cost wrappers: an engine
    // error degrades that rollout's value to -infinity (the search simply
    // avoids it) instead of aborting the whole search. Deadlines are
    // enforced at iteration granularity here.
    engine::IndexConfig root;
    for (int it = 0; it < options_.iterations; ++it) {
      TRAP_RETURN_IF_ERROR(ctx.CheckContinue());
      Simulate(root, 0);
    }
    // Extract the principal variation by most-visited children.
    engine::IndexConfig config = root;
    while (true) {
      Node& n = nodes_[config.Fingerprint()];
      int best = -1;
      int best_visits = 0;
      for (const auto& [action, stats] : n.children) {
        if (stats.visits > best_visits) {
          best = action;
          best_visits = stats.visits;
        }
      }
      if (best < 0) break;
      // Only follow actions whose value beats stopping here.
      const Stats& s = n.children[best];
      if (s.visits == 0 || s.total / s.visits <= Value(config) + 1e-9) break;
      config.Add(candidates_[static_cast<size_t>(best)]);
    }
    return config;
  }

 private:
  struct Stats {
    int visits = 0;
    double total = 0.0;
  };
  struct Node {
    int visits = 0;
    std::map<int, Stats> children;
  };

  double Value(const engine::IndexConfig& config) {
    double cost = optimizer_->WorkloadCost(*workload_, config, ctx_);
    return base_cost_ > 0.0 ? (base_cost_ - cost) / base_cost_ : 0.0;
  }

  std::vector<int> ValidActions(const engine::IndexConfig& config) {
    std::vector<int> out;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (FitsConstraint(config, candidates_[i], constraint_, *schema_)) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }

  // One UCT iteration from `config`; returns the rollout value.
  double Simulate(engine::IndexConfig config, int depth) {
    constexpr int kMaxDepth = 8;
    if (depth >= kMaxDepth) return Value(config);
    std::vector<int> valid = ValidActions(config);
    if (valid.empty()) return Value(config);

    Node& node = nodes_[config.Fingerprint()];
    ++node.visits;

    // Expansion: play an untried action with a random rollout.
    for (int a : valid) {
      if (node.children[a].visits == 0) {
        engine::IndexConfig next = config;
        next.Add(candidates_[static_cast<size_t>(a)]);
        double value = RolloutFrom(next);
        node.children[a].visits = 1;
        node.children[a].total = value;
        return value;
      }
    }
    // Selection: UCT over tried actions.
    int best = -1;
    double best_score = -1e300;
    for (int a : valid) {
      const Stats& s = node.children[a];
      double exploit = s.total / s.visits;
      double explore = options_.exploration *
                       std::sqrt(std::log(static_cast<double>(node.visits)) /
                                 static_cast<double>(s.visits));
      if (exploit + explore > best_score) {
        best_score = exploit + explore;
        best = a;
      }
    }
    engine::IndexConfig next = config;
    next.Add(candidates_[static_cast<size_t>(best)]);
    double value = Simulate(std::move(next), depth + 1);
    node.children[best].visits += 1;
    node.children[best].total += value;
    return value;
  }

  // Random completion of the configuration.
  double RolloutFrom(engine::IndexConfig config) {
    constexpr int kRolloutSteps = 4;
    for (int i = 0; i < kRolloutSteps; ++i) {
      std::vector<int> valid = ValidActions(config);
      if (valid.empty()) break;
      int a = valid[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(valid.size()) - 1))];
      config.Add(candidates_[static_cast<size_t>(a)]);
    }
    return Value(config);
  }

  const engine::WhatIfOptimizer* optimizer_;
  MctsOptions options_;
  common::Rng rng_;

  std::vector<engine::Index> candidates_;
  const catalog::Schema* schema_ = nullptr;
  common::EvalContext ctx_;
  const workload::Workload* workload_ = nullptr;
  TuningConstraint constraint_;
  double base_cost_ = 0.0;
  std::map<uint64_t, Node> nodes_;
};

}  // namespace

std::unique_ptr<IndexAdvisor> MakeMcts(const engine::WhatIfOptimizer& optimizer,
                                       MctsOptions options) {
  return std::make_unique<MctsAdvisor>(optimizer, options);
}

}  // namespace trap::advisor
