#ifndef TRAP_ANALYSIS_OUTLIERS_H_
#define TRAP_ANALYSIS_OUTLIERS_H_

#include <cstdint>
#include <vector>

namespace trap::analysis {

// The three anomaly detectors used in Fig. 17(b) to check whether effective
// perturbations are out-of-distribution: Isolation Forest [80], Local
// Outlier Factor [81], and a one-class centroid detector standing in for the
// one-class SVM [79]. Each flags round(contamination * n) points.
enum class OutlierDetector { kIsolationForest, kLof, kOneClass };

const char* OutlierDetectorName(OutlierDetector d);

// Returns a flag per row of `data` (all rows the same dimension); true =
// outlier. `contamination` in (0, 0.5].
std::vector<bool> DetectOutliers(OutlierDetector detector,
                                 const std::vector<std::vector<double>>& data,
                                 double contamination, uint64_t seed = 17);

// Raw anomaly scores (higher = more anomalous), useful for tests.
std::vector<double> AnomalyScores(OutlierDetector detector,
                                  const std::vector<std::vector<double>>& data,
                                  uint64_t seed = 17);

}  // namespace trap::analysis

#endif  // TRAP_ANALYSIS_OUTLIERS_H_
