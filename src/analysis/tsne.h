#ifndef TRAP_ANALYSIS_TSNE_H_
#define TRAP_ANALYSIS_TSNE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace trap::analysis {

// Exact t-SNE (van der Maaten & Hinton) to 2 dimensions, used to visualize
// the encoder representations of queries before/after perturbation
// (Fig. 17a). Suitable for the few hundred points the figure plots.
struct TsneOptions {
  double perplexity = 20.0;
  int iterations = 300;
  double learning_rate = 20.0;
  uint64_t seed = 0x75e;
};

std::vector<std::pair<double, double>> TsneEmbed(
    const std::vector<std::vector<double>>& data, TsneOptions options = {});

}  // namespace trap::analysis

#endif  // TRAP_ANALYSIS_TSNE_H_
