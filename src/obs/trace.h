#ifndef TRAP_OBS_TRACE_H_
#define TRAP_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace trap::obs {

// Causally-ordered span tree for one evaluation.
//
// Span identity is *logical*, not temporal: a span id is a pure function of
// (parent id, span name, work-item key), where the key is the same logical
// work-item id the fault registry draws on (workload fingerprints, greedy
// round indexes, retry attempt numbers). Export canonicalizes the tree --
// children of each span sorted by (key, name, id), timestamps synthesized
// from the DFS pre-order -- so the exported trace and its digest are
// bit-identical across runs and TRAP_THREADS settings, even though the
// physical interleaving of span openings differs. Keys must distinguish
// spans opened concurrently under one parent with the same name; spans that
// legitimately repeat serially (same parent, name, key) are disambiguated
// by occurrence number.
//
// All members are thread-safe; span args are int64 step counts and sizes
// (never wall-clock durations -- src/ has no clock).
struct TraceEvent {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  uint64_t key = 0;
  std::string name;
  std::vector<std::pair<std::string, int64_t>> args;
  bool closed = false;
  int depth = 0;  // filled by CanonicalEvents()
};

class TraceSink {
 public:
  // Opens a span and returns its id. `parent` is the enclosing span's id
  // (0 for a root span).
  uint64_t OpenSpan(std::string_view name, uint64_t key, uint64_t parent);

  // Attaches a named int64 argument to an open span.
  void AddArg(uint64_t id, std::string_view name, int64_t value);

  void CloseSpan(uint64_t id);

  size_t size() const;
  void Reset();

  // The span tree in canonical order: DFS pre-order with the children of
  // every span sorted by (key, name hash, id); `depth` is filled in.
  std::vector<TraceEvent> CanonicalEvents() const;

  // Order-sensitive fold over the canonical events (depth, name, key, args).
  uint64_t Digest() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TraceEvent> events_;
  std::unordered_map<uint64_t, uint64_t> occurrences_;
};

// Chrome trace-event JSON ("B"/"E" duration events on one synthetic
// thread; `ts` is the canonical DFS step index, not wall time). Load in
// chrome://tracing or Perfetto.
std::string ChromeTraceJson(const TraceSink& sink);

// One JSON object per line per span, in canonical order.
std::string TraceJsonl(const TraceSink& sink);

}  // namespace trap::obs

#endif  // TRAP_OBS_TRACE_H_
