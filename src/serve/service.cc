#include "serve/service.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "advisor/evaluation.h"
#include "advisor/registry.h"
#include "advisor/remote.h"
#include "catalog/datasets.h"
#include "common/deadline.h"
#include "drift/episode.h"
#include "drift/replay.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/wire.h"
#include "sql/query.h"
#include "workload/generator.h"

namespace trap::serve {
namespace {

using common::JsonValue;
using common::Status;
using common::StatusOr;

// Per-request evaluation environment: a deterministic step-budget deadline
// (params "step_budget"; absent or 0 = unbounded), a private TraceSink whose
// digest rides back in the result, and the pinned snapshot. The trace sink
// is per-request so the digest a client sees depends only on its own
// request, never on what other sessions ran first.
struct RequestEnv {
  common::CancelToken cancel;
  obs::TraceSink trace;
  obs::ObsSink obs;
  common::EvalContext ctx;

  RequestEnv(const JsonValue& params, const catalog::Snapshot* snapshot)
      : cancel(BudgetOf(params)) {
    obs.trace = &trace;
    ctx.cancel = &cancel;
    ctx.obs = &obs;
    ctx.snapshot = snapshot;
  }

  static std::uint64_t BudgetOf(const JsonValue& params) {
    std::optional<std::int64_t> budget = params.IntAt("step_budget");
    if (budget.has_value() && *budget > 0) {
      return static_cast<std::uint64_t>(*budget);
    }
    return common::CancelToken::kUnbounded;
  }
};

// Folds the request-invariant trailer into a method result.
JsonValue Finish(JsonValue result, const RequestEnv& env, uint64_t epoch) {
  result.Set("epoch", JsonValue::Hex(epoch));
  result.Set("trace", JsonValue::Hex(env.trace.Digest()));
  return result;
}

// The registry advisor this request runs. Learning advisors need a training
// phase the session API does not expose, and "Remote" would recurse into
// another process; both are rejected as unservable rather than silently
// substituted.
StatusOr<std::string> ResolveAdvisorName(const JsonValue& params) {
  std::string name = params.StringAt("advisor").value_or("Extend");
  if (name == "greedy") name = "Extend";  // the trap_drift alias
  if (name == "SWIRL" || name == "DRLindex" || name == "DQN") {
    return Status::InvalidArgument("advisor not servable (needs training): " +
                                   name);
  }
  if (name == "Remote") {
    return Status::InvalidArgument("advisor not servable (recursive): Remote");
  }
  return name;
}

StatusOr<advisor::TuningConstraint> ResolveConstraint(
    const JsonValue& params, const catalog::Schema& schema) {
  if (const JsonValue* shipped = params.Find("constraint")) {
    return advisor::DecodeConstraint(*shipped);
  }
  return advisor::TuningConstraint::Storage(schema.DataSizeBytes() / 2);
}

// A published overlay is applied lazily (the engine materializes the epoch
// on first use), and StatsOverlay::Apply treats an out-of-range override as
// a programming error. The client is not this process's programmer, so
// range-check everything here and refuse the publish instead.
Status ValidateOverlay(const catalog::StatsOverlay& overlay,
                       const catalog::Schema& base) {
  const int total_tables =
      base.num_tables() + static_cast<int>(overlay.added_tables().size());
  auto columns_of = [&](int t) -> int {
    if (t < base.num_tables()) {
      return static_cast<int>(base.table(t).columns.size());
    }
    const catalog::Table& added =
        overlay.added_tables()[static_cast<size_t>(t - base.num_tables())];
    return static_cast<int>(added.columns.size());
  };
  for (const catalog::Table& added : overlay.added_tables()) {
    if (added.columns.empty()) {
      return Status::InvalidArgument("overlay: added table '" + added.name +
                                     "' has no columns");
    }
  }
  for (const auto& [id, stats] : overlay.column_stats()) {
    (void)stats;
    if (id.table < 0 || id.table >= total_tables || id.column < 0 ||
        id.column >= columns_of(id.table)) {
      return Status::InvalidArgument("overlay: column override out of range");
    }
  }
  for (const auto& [table, rows] : overlay.table_rows()) {
    (void)rows;
    if (table < 0 || table >= total_tables) {
      return Status::InvalidArgument(
          "overlay: row-count override out of range");
    }
  }
  return Status::Ok();
}

std::optional<catalog::Schema> MakeServeSchema(const std::string& name) {
  if (name == "tpch") return catalog::MakeTpcH();
  if (name == "tpcds") return catalog::MakeTpcDs();
  if (name == "transaction") return catalog::MakeTransaction();
  return std::nullopt;
}

}  // namespace

StatusOr<std::unique_ptr<ServeService>> ServeService::Create(
    ServiceOptions options) {
  std::optional<catalog::Schema> schema = MakeServeSchema(options.schema);
  if (!schema.has_value()) {
    return Status::InvalidArgument("unknown schema: " + options.schema);
  }
  if (options.workload_size < 1 || options.pool_size < options.workload_size) {
    return Status::InvalidArgument(
        "workload_size must be >= 1 and <= pool_size");
  }
  return std::unique_ptr<ServeService>(
      new ServeService(std::move(options), *std::move(schema)));
}

ServeService::ServeService(ServiceOptions options, catalog::Schema schema)
    : options_(std::move(options)),
      schema_(std::move(schema)),
      vocab_(schema_, 8),
      optimizer_(schema_),
      truth_(schema_),
      snapshots_(schema_) {}

common::rpc::Response ServeService::Handle(
    const common::rpc::Request& req,
    const std::shared_ptr<const catalog::Snapshot>& snapshot) {
  TRAP_CHECK(snapshot != nullptr);
  ++requests_handled_;
  StatusOr<JsonValue> result = Route(req, *snapshot);
  if (!result.ok()) return common::rpc::ErrorResponse(req.id, result.status());
  return common::rpc::OkResponse(req.id, *std::move(result));
}

StatusOr<JsonValue> ServeService::Route(const common::rpc::Request& req,
                                        const catalog::Snapshot& snapshot) {
  if (req.method == "health") return Health(snapshot);
  if (req.method == "snapshot_stats") {
    return SnapshotStats(req.params, snapshot);
  }
  if (req.method == "advise") return Advise(req.params, snapshot);
  if (req.method == "assess") return Assess(req.params, snapshot);
  if (req.method == "whatif_batch") return WhatIfBatch(req.params, snapshot);
  if (req.method == "drift_replay") return DriftReplay(req.params);
  return Status::InvalidArgument("unknown method: " + req.method);
}

StatusOr<JsonValue> ServeService::Health(const catalog::Snapshot& snap) {
  JsonValue result = JsonValue::Object();
  result.Set("schema", JsonValue::Str(schema_.name()));
  result.Set("epoch", JsonValue::Hex(snap.epoch()));
  result.Set("publications",
             JsonValue::Number(static_cast<double>(snapshots_.publications())));
  result.Set("requests_handled",
             JsonValue::Number(static_cast<double>(requests_handled_)));
  return result;
}

StatusOr<JsonValue> ServeService::SnapshotStats(const JsonValue& params,
                                                const catalog::Snapshot& snap) {
  JsonValue result = JsonValue::Object();
  if (const JsonValue* publish = params.Find("publish")) {
    TRAP_ASSIGN_OR_RETURN(catalog::StatsOverlay overlay,
                          DecodeStatsOverlay(*publish));
    TRAP_RETURN_IF_ERROR(ValidateOverlay(overlay, schema_));
    std::shared_ptr<const catalog::Snapshot> published =
        snapshots_.Publish(std::move(overlay));
    result.Set("published_epoch", JsonValue::Hex(published->epoch()));
  } else if (params.BoolAt("reset").value_or(false)) {
    std::shared_ptr<const catalog::Snapshot> published =
        snapshots_.ResetToBase();
    result.Set("published_epoch", JsonValue::Hex(published->epoch()));
  }
  // The *pinned* epoch: a publish above does not retroactively change what
  // this request (or any other already-admitted request) evaluates under.
  result.Set("epoch", JsonValue::Hex(snap.epoch()));
  result.Set("base", JsonValue::Bool(snap.is_base()));
  const catalog::StatsOverlay& overlay = snap.overlay();
  result.Set("column_stats", JsonValue::Number(static_cast<double>(
                                 overlay.column_stats().size())));
  result.Set("table_rows", JsonValue::Number(static_cast<double>(
                               overlay.table_rows().size())));
  result.Set("added_tables", JsonValue::Number(static_cast<double>(
                                 overlay.added_tables().size())));
  result.Set("publications",
             JsonValue::Number(static_cast<double>(snapshots_.publications())));
  return result;
}

StatusOr<workload::Workload> ServeService::ResolveWorkload(
    const JsonValue& params, const catalog::Schema& schema) const {
  workload::Workload w;
  if (const JsonValue* shipped = params.Find("workload")) {
    TRAP_ASSIGN_OR_RETURN(w, advisor::DecodeWorkload(*shipped));
  } else {
    std::optional<std::int64_t> seed_param = params.IntAt("workload_seed");
    const uint64_t seed = seed_param.has_value() && *seed_param >= 0
                              ? static_cast<uint64_t>(*seed_param)
                              : options_.seed;
    const std::int64_t size =
        params.IntAt("workload_size").value_or(options_.workload_size);
    if (size < 1 || size > options_.pool_size) {
      return Status::InvalidArgument("workload_size out of range");
    }
    // Mirrors trap_drift's scenario generator so "seed S" means the same
    // workload to the served session and the offline tool.
    workload::GeneratorOptions gopt;
    gopt.max_tables = 3;
    gopt.max_filters = 3;
    workload::QueryGenerator gen(vocab_, gopt, seed);
    std::vector<sql::Query> pool = gen.GeneratePool(options_.pool_size);
    for (std::int64_t i = 0; i < size; ++i) {
      w.queries.push_back(
          workload::WorkloadQuery{pool[static_cast<size_t>(i)], 1.0});
    }
  }
  if (w.queries.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  std::string error;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (!sql::ValidateQuery(w.queries[i].query, schema, &error)) {
      return Status::InvalidArgument(
          "workload query " + std::to_string(i) +
          " does not validate under this epoch: " + error);
    }
  }
  return w;
}

StatusOr<JsonValue> ServeService::Advise(const JsonValue& params,
                                         const catalog::Snapshot& snap) {
  RequestEnv env(params, &snap);
  TRAP_ASSIGN_OR_RETURN(std::string name, ResolveAdvisorName(params));
  TRAP_ASSIGN_OR_RETURN(workload::Workload w,
                        ResolveWorkload(params, optimizer_.SchemaFor(env.ctx)));
  TRAP_ASSIGN_OR_RETURN(advisor::TuningConstraint constraint,
                        ResolveConstraint(params, schema_));
  TRAP_ASSIGN_OR_RETURN(std::unique_ptr<advisor::IndexAdvisor> adv,
                        advisor::MakeAdvisor(name, optimizer_));
  TRAP_ASSIGN_OR_RETURN(engine::IndexConfig config,
                        adv->TryRecommend(w, constraint, env.ctx));
  JsonValue result = JsonValue::Object();
  result.Set("advisor", JsonValue::Str(adv->name()));
  result.Set("config", advisor::EncodeIndexConfig(config));
  return Finish(std::move(result), env, snap.epoch());
}

StatusOr<JsonValue> ServeService::Assess(const JsonValue& params,
                                         const catalog::Snapshot& snap) {
  RequestEnv env(params, &snap);
  TRAP_ASSIGN_OR_RETURN(std::string name, ResolveAdvisorName(params));
  // The true-cost oracle measures under the construction-time base schema,
  // so assessed workloads must validate against it (the pinned snapshot
  // still governs the advisor's what-if view -- the paper's asymmetry).
  TRAP_ASSIGN_OR_RETURN(workload::Workload w, ResolveWorkload(params, schema_));
  TRAP_ASSIGN_OR_RETURN(advisor::TuningConstraint constraint,
                        ResolveConstraint(params, schema_));
  TRAP_ASSIGN_OR_RETURN(std::unique_ptr<advisor::IndexAdvisor> adv,
                        advisor::MakeAdvisor(name, optimizer_));
  std::unique_ptr<advisor::IndexAdvisor> baseline;
  if (std::optional<std::string> baseline_name = params.StringAt("baseline");
      baseline_name.has_value()) {
    TRAP_ASSIGN_OR_RETURN(baseline,
                          advisor::MakeAdvisor(*baseline_name, optimizer_));
  }
  advisor::RobustnessEvaluator evaluator(optimizer_, truth_);
  TRAP_ASSIGN_OR_RETURN(
      double utility,
      evaluator.TryIndexUtility(*adv, baseline.get(), w, constraint, env.ctx));
  JsonValue result = JsonValue::Object();
  result.Set("advisor", JsonValue::Str(adv->name()));
  result.Set("utility", JsonValue::Number(utility));
  if (const JsonValue* perturbed_doc = params.Find("perturbed")) {
    TRAP_ASSIGN_OR_RETURN(workload::Workload perturbed,
                          advisor::DecodeWorkload(*perturbed_doc));
    std::string error;
    for (size_t i = 0; i < perturbed.queries.size(); ++i) {
      if (!sql::ValidateQuery(perturbed.queries[i].query, schema_, &error)) {
        return Status::InvalidArgument("perturbed query " + std::to_string(i) +
                                       " does not validate: " + error);
      }
    }
    TRAP_ASSIGN_OR_RETURN(double utility_perturbed,
                          evaluator.TryIndexUtility(*adv, baseline.get(),
                                                    perturbed, constraint,
                                                    env.ctx));
    result.Set("utility_perturbed", JsonValue::Number(utility_perturbed));
    result.Set("iudr", JsonValue::Number(advisor::RobustnessEvaluator::Iudr(
                           utility, utility_perturbed)));
  }
  return Finish(std::move(result), env, snap.epoch());
}

StatusOr<JsonValue> ServeService::WhatIfBatch(const JsonValue& params,
                                              const catalog::Snapshot& snap) {
  RequestEnv env(params, &snap);
  TRAP_ASSIGN_OR_RETURN(workload::Workload w,
                        ResolveWorkload(params, optimizer_.SchemaFor(env.ctx)));
  const JsonValue* configs_doc = params.Find("configs");
  if (configs_doc == nullptr ||
      configs_doc->kind != JsonValue::Kind::kArray ||
      configs_doc->items.empty()) {
    return Status::InvalidArgument(
        "whatif_batch needs a non-empty \"configs\" array");
  }
  std::vector<engine::IndexConfig> configs;
  configs.reserve(configs_doc->items.size());
  for (const JsonValue& item : configs_doc->items) {
    TRAP_ASSIGN_OR_RETURN(engine::IndexConfig config,
                          advisor::DecodeIndexConfig(item));
    configs.push_back(std::move(config));
  }
  TRAP_ASSIGN_OR_RETURN(std::vector<double> costs,
                        optimizer_.TryWorkloadCosts(w, configs, env.ctx));
  JsonValue result = JsonValue::Object();
  JsonValue costs_doc = JsonValue::Array();
  for (double cost : costs) costs_doc.Push(JsonValue::Number(cost));
  result.Set("costs", std::move(costs_doc));
  return Finish(std::move(result), env, snap.epoch());
}

StatusOr<JsonValue> ServeService::DriftReplay(const JsonValue& params) {
  // Drift replay always starts from the base epoch: the episode stream
  // builds its own cumulative overlays over the base schema, independent of
  // whatever snapshot the session pinned.
  RequestEnv env(params, nullptr);
  TRAP_ASSIGN_OR_RETURN(std::string name, ResolveAdvisorName(params));
  TRAP_ASSIGN_OR_RETURN(workload::Workload base,
                        ResolveWorkload(params, schema_));
  TRAP_ASSIGN_OR_RETURN(advisor::TuningConstraint constraint,
                        ResolveConstraint(params, schema_));
  TRAP_ASSIGN_OR_RETURN(std::unique_ptr<advisor::IndexAdvisor> adv,
                        advisor::MakeAdvisor(name, optimizer_));

  const std::int64_t episodes = params.IntAt("episodes").value_or(4);
  if (episodes < 1 || episodes > 64) {
    return Status::InvalidArgument("episodes must be in [1, 64]");
  }
  std::optional<std::int64_t> seed_param = params.IntAt("seed");
  const uint64_t seed = seed_param.has_value() && *seed_param >= 0
                            ? static_cast<uint64_t>(*seed_param)
                            : options_.seed;
  const std::int64_t episode_budget =
      params.IntAt("episode_step_budget").value_or(0);
  if (episode_budget < 0) {
    return Status::InvalidArgument("episode_step_budget must be >= 0");
  }

  engine::IndexConfig initial =
      adv->TryRecommend(base, constraint, env.ctx)
          .value_or(engine::IndexConfig{});
  drift::EpisodeStream stream(vocab_, std::move(base), drift::DriftSpec{},
                              seed);
  drift::ReplayOptions ropt;
  ropt.episodes = static_cast<int>(episodes);
  ropt.episode_step_budget = static_cast<uint64_t>(episode_budget);
  drift::ReplayLoop loop(&optimizer_, ropt);
  drift::ReadviseFn readvise =
      [&adv, &constraint](const workload::Workload& w,
                          const common::EvalContext& rctx) {
        return adv->TryRecommend(w, constraint, rctx);
      };
  TRAP_ASSIGN_OR_RETURN(
      drift::ReplayResult replay,
      loop.TryRun(stream, std::move(initial), readvise, env.ctx));

  double adoptions = 0.0;
  double degradations = 0.0;
  for (const drift::EpisodeResult& er : replay.episodes) {
    adoptions += er.adopted ? 1.0 : 0.0;
    degradations += er.degraded ? 1.0 : 0.0;
  }
  JsonValue result = JsonValue::Object();
  result.Set("advisor", JsonValue::Str(adv->name()));
  result.Set("episodes",
             JsonValue::Number(static_cast<double>(replay.episodes.size())));
  result.Set("total_regret", JsonValue::Number(replay.total_regret));
  result.Set("regret_digest", JsonValue::Hex(replay.series_fp));
  result.Set("adoptions", JsonValue::Number(adoptions));
  result.Set("degradations", JsonValue::Number(degradations));
  result.Set("final_config", advisor::EncodeIndexConfig(replay.final_config));
  return Finish(std::move(result), env, /*epoch=*/0);
}

}  // namespace trap::serve
