#ifndef TRAP_SQL_VALUE_H_
#define TRAP_SQL_VALUE_H_

#include <cstdint>
#include <string>

#include "catalog/schema.h"

namespace trap::sql {

// A predicate literal. Numeric columns carry the literal directly; string
// columns are dictionary-encoded against the column's ordinal domain
// [0, num_distinct), which is how the statistics-only catalog models strings.
struct Value {
  catalog::ColumnType type = catalog::ColumnType::kInt;
  double numeric = 0.0;  // int values are stored exactly (|v| < 2^53)

  static Value Int(int64_t v) {
    return Value{catalog::ColumnType::kInt, static_cast<double>(v)};
  }
  static Value Double(double v) { return Value{catalog::ColumnType::kDouble, v}; }
  static Value StringCode(int64_t ordinal) {
    return Value{catalog::ColumnType::kString, static_cast<double>(ordinal)};
  }

  friend bool operator==(const Value&, const Value&) = default;
};

// Renders a value as a SQL literal, using the column for string rendering.
std::string ToSqlLiteral(const Value& v, const catalog::Column& column);

}  // namespace trap::sql

#endif  // TRAP_SQL_VALUE_H_
