#ifndef TRAP_CATALOG_STATS_OVERLAY_H_
#define TRAP_CATALOG_STATS_OVERLAY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "catalog/schema.h"

namespace trap::catalog {

// Replacement statistics for one column. The statistics-only catalog models
// a column's data distribution as (num_distinct, min/max domain, skew);
// these four fields are the "histogram" every selectivity estimate derives
// from, so shifting them is how drift scenarios model data-distribution
// change without a row store.
struct ColumnStats {
  int64_t num_distinct = 1;
  double min_value = 0.0;
  double max_value = 1.0;
  double skew = 0.0;

  friend bool operator==(const ColumnStats&, const ColumnStats&) = default;
};

// The stats currently recorded for `column`.
ColumnStats StatsOf(const Column& column);

// A copy-on-read view of "the database after data shift": per-column
// statistic overrides, per-table row-count overrides, and tables appended
// mid-run (schema growth). An overlay never mutates the Schema it is applied
// to -- episodes see shifted statistics while every other consumer of the
// shared catalog keeps reading the frozen base -- and two overlays with the
// same content always produce the same Fingerprint(), which the what-if
// engine mixes into its cache keys as the *stats epoch* so an estimate
// computed under one distribution can never answer a probe made under
// another.
//
// Appended tables are indexed after the base schema's tables, in insertion
// order: the k-th AddTable() call becomes table index
// base.num_tables() + k under Apply(). Column overrides may target base or
// appended tables. Join edges are never touched (the join graph is the
// immutable backbone, as for query perturbation).
class StatsOverlay {
 public:
  void SetColumnStats(ColumnId id, const ColumnStats& stats);
  void SetTableRows(int table, int64_t num_rows);
  void AddTable(Table table);

  bool empty() const {
    return column_stats_.empty() && table_rows_.empty() &&
           added_tables_.empty();
  }

  // Stable content fingerprint: 0 iff empty() (the base epoch), nonzero and
  // deterministic across runs otherwise.
  uint64_t Fingerprint() const;

  // Materializes the overlay over `base`: appended tables first, then row
  // and column overrides. Aborts (programming error) on an override naming
  // a table or column that exists in neither `base` nor the appended set.
  Schema Apply(const Schema& base) const;

  const std::map<ColumnId, ColumnStats>& column_stats() const {
    return column_stats_;
  }
  const std::map<int, int64_t>& table_rows() const { return table_rows_; }
  const std::vector<Table>& added_tables() const { return added_tables_; }

 private:
  std::map<ColumnId, ColumnStats> column_stats_;  // ordered: stable folds
  std::map<int, int64_t> table_rows_;
  std::vector<Table> added_tables_;
};

}  // namespace trap::catalog

#endif  // TRAP_CATALOG_STATS_OVERLAY_H_
