#ifndef TRAP_ADVISOR_HEURISTIC_ADVISORS_H_
#define TRAP_ADVISOR_HEURISTIC_ADVISORS_H_

#include <memory>

#include "advisor/advisor.h"

namespace trap::advisor {

// Shared switches for the heuristic advisors, exposing the design choices
// the paper ablates in Section VI-B:
//   * consider_interaction (Fig. 14): when true, a candidate's benefit is
//     re-evaluated under the currently selected configuration; when false,
//     each index's benefit is computed with only that index built and reused
//     unchanged across greedy rounds.
//   * multi_column (Fig. 15): when false, only single-column candidates.
struct HeuristicOptions {
  bool consider_interaction = true;
  bool multi_column = true;
  int max_index_width = 3;
};

// Extend [Schlosser et al., ICDE'19]: incremental, storage-budgeted,
// benefit-per-storage criterion. Starts from single-column candidates and
// extends already-selected indexes by appending attributes.
std::unique_ptr<IndexAdvisor> MakeExtend(const engine::WhatIfOptimizer& optimizer,
                                         HeuristicOptions options = {});

// DB2Advis [Valentin et al., ICDE'00]: derives per-query candidates, costs
// the workload ONCE with all candidates hypothetically built (the one-time
// what-if call the paper identifies as its robustness weakness), attributes
// benefits to the indexes actually used, then packs greedily by
// benefit-per-storage.
std::unique_ptr<IndexAdvisor> MakeDb2Advis(const engine::WhatIfOptimizer& optimizer,
                                           HeuristicOptions options = {});

// AutoAdmin [Chaudhuri & Narasayya, VLDB'97]: per-query candidate selection
// followed by greedy enumeration under an index-count constraint.
std::unique_ptr<IndexAdvisor> MakeAutoAdmin(const engine::WhatIfOptimizer& optimizer,
                                            HeuristicOptions options = {});

// Drop [Whang, 1987]: decremental; starts from all single-column candidates
// and drops the least useful until the count constraint is met
// (single-column only by design).
std::unique_ptr<IndexAdvisor> MakeDrop(const engine::WhatIfOptimizer& optimizer,
                                       HeuristicOptions options = {});

// Relaxation [Bruno & Chaudhuri, SIGMOD'05]: starts from the union of
// per-query optimal configurations and relaxes (remove / narrow to prefix /
// merge) until the storage budget is met, minimizing penalty per byte saved.
std::unique_ptr<IndexAdvisor> MakeRelaxation(const engine::WhatIfOptimizer& optimizer,
                                             HeuristicOptions options = {});

// DTA [Chaudhuri & Narasayya, anytime tuning advisor]: seeds with per-query
// best configurations, then greedy anytime refinement with a bounded number
// of what-if evaluations.
std::unique_ptr<IndexAdvisor> MakeDta(const engine::WhatIfOptimizer& optimizer,
                                      HeuristicOptions options = {});

}  // namespace trap::advisor

#endif  // TRAP_ADVISOR_HEURISTIC_ADVISORS_H_
