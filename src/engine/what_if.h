#ifndef TRAP_ENGINE_WHAT_IF_H_
#define TRAP_ENGINE_WHAT_IF_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "catalog/snapshot.h"
#include "catalog/stats_overlay.h"
#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/cost_model.h"
#include "engine/query_shape.h"
#include "engine/scratch.h"
#include "engine/stats_epoch.h"
#include "obs/obs.h"

namespace trap::engine {

// Hypothetical-index ("what-if") interface: the only channel through which
// index advisors and TRAP interact with the database engine, mirroring the
// what-if calls of the paper's PostgreSQL setup. Costs are memoized on
// (query fingerprint, configuration fingerprint), since advisors probe the
// same query under many configurations.
//
// Hot-path structure (the assessment loop is bounded by what-if throughput;
// the paper's Table 4 counts optimizer invocations for exactly this reason):
//   * Query shapes — everything about a query that does not depend on the
//     index configuration (filter selectivities, join order, cardinalities,
//     referenced columns, sort/aggregate constants) — are precompiled once
//     per query fingerprint into a second sharded cache and fed to
//     CostModel's allocation-free cost kernel; only access-path and probe
//     selection run per (query, config) pair.
//   * Batched entry points fingerprint each query and configuration once,
//     deduplicate identical (query_fp, config_fp) items before dispatch,
//     and fan only the unique set out over the pool in cache-friendly
//     grains (ThreadPool::ParallelForGrained).
//   * All per-batch bookkeeping lives in a per-thread scratch arena
//     (engine/scratch.h), so a steady-state batch performs no heap
//     allocation outside the memo caches themselves.
//
// Thread safety: every const method is safe to call concurrently. Both memo
// caches are sharded N ways with a per-shard mutex (shard picked from the
// key's high bits, since HashCombine mixes well there; shards are
// cache-line aligned so neighbouring shard locks do not false-share), and
// the call/miss counters are atomic. Batched results are bit-identical for
// any TRAP_THREADS setting: per-item costs are written into pre-sized slots
// and reduced serially in input order.
//
// Error handling: the Try* entry points are the *canonical* fallible core
// -- they honor the EvalContext (step budget, cancellation, pool choice,
// trace sink) and surface injected faults and internal inconsistencies as
// Statuses. Batched Try* calls aggregate per-item Statuses by picking the
// first error in *input order*, so the returned Status is bit-identical
// across thread counts. Deduplicated items keep the accounting of the
// pre-dedup path: every item still charges one step and counts one call,
// and duplicates inherit their primary's Status (fault draws key on the
// (query_fp, config_fp) pair, so a duplicate would have drawn the same
// fate). Every infallible form below is a thin shim over its Try* twin
// (this header is the only definition site) that degrades an error to
// +infinity cost -- a deterministic "this configuration is unusable"
// answer that can never be mistaken for a real estimate (real costs are
// finite and non-negative).
//
// Observability: calls, per-entry cache misses, shape-cache misses, batch
// sizes, duplicate configurations and deduplicated pairs per batch feed the
// global obs::MetricRegistry under trap.whatif.*; checksum heals and
// fingerprint collisions are recorded best-effort (see obs/metrics.h on
// determinism). With a trace sink in the context, each batched call records
// a whatif.batch span.
//
// Statistics epochs: every evaluation reads its catalog state from the
// immutable catalog::Snapshot on ctx.snapshot (nullptr = the base epoch;
// drift scenarios and the serve runtime build snapshots to shift
// per-column statistics or grow the schema mid-run without mutating any
// shared state). The optimizer holds no "active" epoch at all -- two
// concurrent calls under different snapshots each resolve, and cost
// against, their own epoch. Both memo caches mix the epoch fingerprint
// into their keys and store it in their entries, so an estimate computed
// under one data distribution can never answer a probe made under another.
// Fault draws deliberately do NOT key on the epoch: a (query, config) work
// item draws the same fate under every distribution, keeping fault
// campaigns comparable across drift. Each batched call resolves its epoch
// once at entry, so however the caller swaps snapshots between calls, one
// batch is never split across epochs.
//
// Cache integrity: every cost-cache entry carries a checksum over
// (query_fp, config_fp, epoch_fp, cost). A hit whose entry fails the
// checksum (e.g. the cache.shard.poison fault site corrupted it at insert)
// is detected, recomputed, and repaired in place -- the caller always
// receives the true cost, and num_integrity_recoveries() counts the
// self-healing events. Shape-cache entries store the full query plus their
// epoch fingerprint and are verified against both on every hit, so a 64-bit
// fingerprint collision is answered by fresh computation, never by another
// query's (or another distribution's) shape.
class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const catalog::Schema& schema,
                           CostParams params = {});

  // Estimated cost of `q` under hypothetical configuration `config`.
  // Shim over TryQueryCost: degrades errors to +infinity.
  double QueryCost(const sql::Query& q, const IndexConfig& config,
                   const common::EvalContext& ctx = {}) const {
    return TryQueryCost(q, config, ctx).value_or(kInfiniteCost);
  }

  // Fallible cost of `q` under `config`, honoring `ctx` (step budget,
  // cancellation, fault salt).
  common::StatusOr<double> TryQueryCost(const sql::Query& q,
                                        const IndexConfig& config,
                                        const common::EvalContext& ctx = {})
      const;

  // The plan behind the estimate (uncached), under ctx.snapshot's epoch.
  // PlanNode::index pointers borrow from `config`, which must outlive the
  // returned plan.
  std::unique_ptr<PlanNode> Plan(const sql::Query& q,
                                 const IndexConfig& config,
                                 const common::EvalContext& ctx = {}) const;

  // Batched: weighted workload cost, with per-query what-if calls evaluated
  // in parallel on ctx.pool (global pool when null). `WorkloadT` is any
  // type with a `queries` container of {query, weight} items
  // (workload::Workload; templated to keep the engine layer free of an
  // upward dependency). Shim over TryWorkloadCost: degrades errors to
  // +infinity.
  template <typename WorkloadT>
  double WorkloadCost(const WorkloadT& w, const IndexConfig& config,
                      const common::EvalContext& ctx = {}) const {
    common::StatusOr<double> total = TryWorkloadCost(w, config, ctx);
    return std::move(total).value_or(kInfiniteCost);
  }

  template <typename WorkloadT>
  common::StatusOr<double> TryWorkloadCost(
      const WorkloadT& w, const IndexConfig& config,
      const common::EvalContext& ctx = {}) const {
    ScratchLease scratch;
    BatchScratch& sc = *scratch;
    const size_t n = w.queries.size();
    sc.query_ptrs.resize(n);
    sc.weights.resize(n);
    for (size_t i = 0; i < n; ++i) {
      sc.query_ptrs[i] = &w.queries[i].query;
      sc.weights[i] = w.queries[i].weight;
    }
    double total = 0.0;
    TRAP_RETURN_IF_ERROR(BatchCostCore(sc, n, &config, 1,
                                       /*weighted=*/true,
                                       BatchKind::kWorkloadCost, ctx, &total));
    return total;
  }

  // Batched candidate-benefit sweep: weighted workload cost under each of
  // `configs`, all unique (query, config) pairs evaluated in parallel.
  // Entry k of the result corresponds to configs[k]. Shim over
  // TryWorkloadCosts: degrades errors to +infinity.
  template <typename WorkloadT>
  std::vector<double> WorkloadCosts(const WorkloadT& w,
                                    const std::vector<IndexConfig>& configs,
                                    const common::EvalContext& ctx = {}) const {
    common::StatusOr<std::vector<double>> totals =
        TryWorkloadCosts(w, configs, ctx);
    if (totals.ok()) return *std::move(totals);
    return std::vector<double>(configs.size(), kInfiniteCost);
  }

  template <typename WorkloadT>
  common::StatusOr<std::vector<double>> TryWorkloadCosts(
      const WorkloadT& w, const std::vector<IndexConfig>& configs,
      const common::EvalContext& ctx = {}) const {
    ScratchLease scratch;
    BatchScratch& sc = *scratch;
    const size_t nq = w.queries.size();
    sc.query_ptrs.resize(nq);
    sc.weights.resize(nq);
    for (size_t i = 0; i < nq; ++i) {
      sc.query_ptrs[i] = &w.queries[i].query;
      sc.weights[i] = w.queries[i].weight;
    }
    std::vector<double> totals(configs.size(), 0.0);
    TRAP_RETURN_IF_ERROR(BatchCostCore(sc, nq, configs.data(), configs.size(),
                                       /*weighted=*/true,
                                       BatchKind::kWorkloadCosts, ctx,
                                       totals.data()));
    return totals;
  }

  // Batched: cost of one query under each of `configs` (parallel,
  // order-preserving) — the inner loop of per-query greedy searches.
  // Shim over TryQueryCosts: degrades errors to +infinity per entry.
  std::vector<double> QueryCosts(const sql::Query& q,
                                 const std::vector<IndexConfig>& configs,
                                 const common::EvalContext& ctx = {}) const;

  common::StatusOr<std::vector<double>> TryQueryCosts(
      const sql::Query& q, const std::vector<IndexConfig>& configs,
      const common::EvalContext& ctx = {}) const;

  // The base schema and cost model (the constructor-time catalog, no
  // overlay). Snapshot-carrying callers should use SchemaFor(ctx) instead.
  const catalog::Schema& schema() const {
    return epochs_.Base()->model.schema();
  }
  const CostModel& cost_model() const { return epochs_.Base()->model; }

  // The schema ctx.snapshot's epoch evaluates under: the base schema for a
  // null or base snapshot, the overlay-applied schema otherwise
  // (materialized once per distinct epoch, retained for the optimizer's
  // lifetime -- the reference stays valid across any later snapshots).
  // Advisors call this at TryRecommend entry so candidate generation sees
  // the same catalog the costing below it does.
  const catalog::Schema& SchemaFor(const common::EvalContext& ctx) const {
    return epochs_.Resolve(ctx.snapshot)->model.schema();
  }

  // Fingerprint of the epoch ctx.snapshot evaluates under; 0 = base.
  uint64_t EpochOf(const common::EvalContext& ctx) const {
    return ctx.snapshot == nullptr ? 0 : ctx.snapshot->epoch();
  }

  // The sentinel cost returned by the legacy (non-Try) wrappers when the
  // underlying evaluation fails: +infinity never wins a cost comparison, so
  // a degraded estimate can only push a search away from the failed config.
  static constexpr double kInfiniteCost =
      std::numeric_limits<double>::infinity();

  // Number of what-if calls answered (including cache hits and batch
  // duplicates) — the paper's efficiency discussions count optimizer
  // invocations.
  int64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }
  // Misses are counted once per cache entry actually inserted, so the count
  // is deterministic across thread counts even when two threads race to
  // fill the same entry.
  int64_t num_cache_misses() const {
    return num_misses_.load(std::memory_order_relaxed);
  }
  // Detected 64-bit fingerprint collisions (answered by recomputation, never
  // from the colliding entry).
  int64_t num_collisions() const {
    return num_collisions_.load(std::memory_order_relaxed);
  }
  // Cache hits whose entry failed its integrity checksum and was recomputed
  // and repaired (see cache.shard.poison in common/fault.h).
  int64_t num_integrity_recoveries() const {
    return num_integrity_recoveries_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    num_calls_.store(0, std::memory_order_relaxed);
    num_misses_.store(0, std::memory_order_relaxed);
    num_collisions_.store(0, std::memory_order_relaxed);
    num_integrity_recoveries_.store(0, std::memory_order_relaxed);
  }

  size_t cache_size() const;
  // Clears memoized *costs* (across every stats epoch). Precompiled query
  // shapes are pure functions of (stats epoch, query) and their cache keys
  // carry the epoch, so they can never go stale — they are retained.
  void ClearCache();

  // Number of precompiled query shapes held (one per distinct query seen).
  size_t shape_cache_size() const;

 private:
  // Every component of the memo key is stored so a HashCombine collision is
  // detected (and answered by recomputation) instead of silently returning
  // another pair's — or another stats epoch's — cost; `checksum` covers
  // (query_fp, config_fp, epoch_fp, cost) so a corrupted entry is detected
  // on hit and repaired.
  struct CacheEntry {
    uint64_t query_fp = 0;
    uint64_t config_fp = 0;
    uint64_t epoch_fp = 0;
    double cost = 0.0;
    uint64_t checksum = 0;
  };
  // Cache-line aligned: a shard's mutex must not false-share with its
  // neighbours when different threads hit different shards.
  struct alignas(64) CacheShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, CacheEntry> map;
  };
  // Shape entries record the epoch they were compiled under; a hit must
  // match both the stored query and the probing epoch.
  struct ShapeEntry {
    uint64_t epoch_fp = 0;
    std::unique_ptr<QueryShape> shape;
  };
  struct alignas(64) ShapeShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, ShapeEntry> map;
  };
  static constexpr size_t kNumShards = 16;  // power of two

  // Which batched entry point a BatchCostCore call serves; selects the
  // span-key derivation (kept bit-compatible with the pre-batched-core
  // code so golden trace digests are unchanged).
  enum class BatchKind { kWorkloadCost, kWorkloadCosts, kQueryCosts };

  static uint64_t EntryChecksum(uint64_t query_fp, uint64_t config_fp,
                                uint64_t epoch_fp, double cost);

  // Records batch size / duplicate-config metrics for a batched call of
  // `items` what-if items over `config_fps`, and annotates `span`.
  // `sort_scratch` is clobbered.
  static void RecordBatchMetrics(size_t items,
                                 const std::vector<uint64_t>& config_fps,
                                 std::vector<uint64_t>* sort_scratch,
                                 obs::TraceSpan* span);

  // The precompiled shape for (epoch, query_fp, q): served from the shape
  // cache, computed against `epoch`'s cost model and inserted on first
  // sight. Returns nullptr on a verified fingerprint collision (caller must
  // fall back to shape-free costing).
  const QueryShape* ResolveShape(const StatsEpoch& epoch, uint64_t query_fp,
                                 const sql::Query& q) const;

  // The shared batched core behind TryWorkloadCost / TryWorkloadCosts /
  // TryQueryCosts: fingerprints queries (sc.query_ptrs, size nq) and
  // configs once, dedups identical (query_fp, config_fp) items, evaluates
  // the unique set in parallel grains, and folds totals[0..nc) serially in
  // input order (weights from sc.weights when `weighted`).
  common::Status BatchCostCore(BatchScratch& sc, size_t nq,
                               const IndexConfig* configs, size_t nc,
                               bool weighted, BatchKind kind,
                               const common::EvalContext& ctx,
                               double* totals) const;

  // The fallible memoized core: charges one step against ctx, consults the
  // engine.whatif.* fault sites, validates computed costs (finite,
  // non-negative) and cache-entry checksums. On success writes the cost to
  // *out; errors are never cached. `shape` is the prefetched shape for `q`;
  // nullptr means resolve on demand (and cost shape-free if resolution
  // reports a fingerprint collision).
  common::Status CachedCostStatus(const StatsEpoch& epoch, const sql::Query& q,
                                  uint64_t query_fp, const QueryShape* shape,
                                  uint64_t config_fp, const IndexConfig& config,
                                  const common::EvalContext& ctx,
                                  double* out) const;

  StatsEpochRegistry epochs_;
  mutable std::array<CacheShard, kNumShards> shards_;
  mutable std::array<ShapeShard, kNumShards> shape_shards_;
  mutable std::atomic<int64_t> num_calls_{0};
  mutable std::atomic<int64_t> num_misses_{0};
  mutable std::atomic<int64_t> num_collisions_{0};
  mutable std::atomic<int64_t> num_integrity_recoveries_{0};
};

}  // namespace trap::engine

#endif  // TRAP_ENGINE_WHAT_IF_H_
