#ifndef TRAP_NN_LAYERS_H_
#define TRAP_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/graph.h"

namespace trap::nn {

// Base for anything owning trainable parameters. Layers register their
// Parameters with the owning Model so the optimizer can reach them.
class ParameterStore {
 public:
  Parameter* Create(int rows, int cols, common::Rng& rng);
  Parameter* CreateZero(int rows, int cols);
  Parameter* CreateConst(int rows, int cols, double value);

  std::vector<Parameter*> parameters();
  int64_t NumParameters() const;
  void ZeroGrad();

  // Deep-copies parameter values from another store of identical layout.
  void CopyValuesFrom(const ParameterStore& other);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

// y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore* store, int in, int out, common::Rng& rng);

  Graph::VarId Forward(Graph& g, Graph::VarId x) const;

  Parameter* weight() const { return w_; }
  Parameter* bias() const { return b_; }

 private:
  Parameter* w_ = nullptr;
  Parameter* b_ = nullptr;
};

// Token embedding table (V x D); lookup via sparse gather.
class Embedding {
 public:
  Embedding() = default;
  Embedding(ParameterStore* store, int vocab, int dim, common::Rng& rng);

  // Returns an (ids.size() x dim) matrix of embeddings.
  Graph::VarId Forward(Graph& g, const std::vector<int>& ids) const;

  int dim() const { return dim_; }
  Parameter* table() const { return table_; }

 private:
  Parameter* table_ = nullptr;
  int dim_ = 0;
};

// Standard GRU cell (update gate z, reset gate r, candidate n):
//   z = sigmoid(x Wxz + h Whz + bz)
//   r = sigmoid(x Wxr + h Whr + br)
//   n = tanh(x Wxn + (r*h) Whn + bn)
//   h' = h + z * (n - h)
class GruCell {
 public:
  GruCell() = default;
  GruCell(ParameterStore* store, int input, int hidden, common::Rng& rng);

  Graph::VarId Step(Graph& g, Graph::VarId x, Graph::VarId h) const;

  int hidden() const { return hidden_; }

 private:
  Linear xz_, hz_, xr_, hr_, xn_, hn_;
  int hidden_ = 0;
};

// Multi-layer perceptron with ReLU activations between layers.
class Mlp {
 public:
  Mlp() = default;
  Mlp(ParameterStore* store, const std::vector<int>& dims, common::Rng& rng);

  Graph::VarId Forward(Graph& g, Graph::VarId x) const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace trap::nn

#endif  // TRAP_NN_LAYERS_H_
