#include "engine/stats_epoch.h"

#include <memory>
#include <utility>

namespace trap::engine {

StatsEpochRegistry::StatsEpochRegistry(const catalog::Schema& base,
                                       const CostParams& params)
    : base_(&base),
      params_(params),
      base_epoch_(std::make_shared<const StatsEpoch>(base, params)),
      current_(base_epoch_) {}

std::shared_ptr<const StatsEpoch> StatsEpochRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t StatsEpochRegistry::Install(const catalog::StatsOverlay& overlay) {
  const uint64_t fp = overlay.Fingerprint();
  if (fp == 0) {
    Reset();
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retained_.find(fp);
  if (it == retained_.end()) {
    // Cold path: materialize the shifted schema once per distinct overlay
    // content. Costing itself never copies schemas.
    auto schema = std::make_unique<const catalog::Schema>(
        overlay.Apply(*base_));
    it = retained_
             .emplace(fp, std::make_shared<const StatsEpoch>(
                              fp, std::move(schema), params_))
             .first;
  }
  current_ = it->second;
  return fp;
}

void StatsEpochRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = base_epoch_;
}

}  // namespace trap::engine
