// Fig. 16: effect of the six query-change types (Section VI-C).
// (a) causal scores of each change type against IUDR, under three causal
//     models; (b) the distribution of change types among non-sargable
//     perturbed workloads.

#include <cstdio>

#include "analysis/causal.h"
#include "common/stats.h"
#include "analysis/query_change.h"
#include "advisor/registry.h"
#include "harness.h"

namespace tc = ::trap::trap;
using namespace trap;

int main() {
  bench::BenchEnv env(catalog::MakeTpcH(0.15), 0xf16);
  std::unique_ptr<advisor::IndexAdvisor> extend =
      *advisor::MakeAdvisor("Extend", env.optimizer);
  advisor::TuningConstraint constraint = env.StorageConstraint();
  engine::CostModel model(env.schema);
  common::Rng rng(0x16f);

  // Collect (change occurrence, IUDR) pairs from random Shared-Table
  // perturbations of eligible workloads; track non-sargable ones separately.
  std::vector<std::vector<double>> x(analysis::kNumQueryChangeTypes);
  std::vector<double> y;
  std::vector<int> nonsarg_counts(analysis::kNumQueryChangeTypes, 0);
  int nonsarg_total = 0;

  for (const workload::Workload& w : env.tests) {
    double u = env.evaluator.IndexUtility(*extend, nullptr, w, constraint);
    if (u <= 0.1) continue;
    for (int attempt = 0; attempt < 60; ++attempt) {
      workload::Workload perturbed;
      std::array<bool, analysis::kNumQueryChangeTypes> flags{};
      for (const workload::WorkloadQuery& wq : w.queries) {
        tc::ReferenceTree tree(wq.query, env.vocab,
                               tc::PerturbationConstraint::kSharedTable, 5);
        while (!tree.Done()) tree.Advance(rng.Choice(tree.LegalTokens()));
        sql::Query pq = tree.Materialize();
        auto qflags = analysis::ClassifyQueryChanges(wq.query, pq, model);
        for (int t = 0; t < analysis::kNumQueryChangeTypes; ++t) {
          flags[static_cast<size_t>(t)] =
              flags[static_cast<size_t>(t)] || qflags[static_cast<size_t>(t)];
        }
        perturbed.queries.push_back(workload::WorkloadQuery{pq, wq.weight});
      }
      if (bench::IsNonSargable(env, perturbed, constraint, 0.1)) {
        ++nonsarg_total;
        for (int t = 0; t < analysis::kNumQueryChangeTypes; ++t) {
          if (flags[static_cast<size_t>(t)]) ++nonsarg_counts[static_cast<size_t>(t)];
        }
        continue;
      }
      double u_prime =
          env.evaluator.IndexUtility(*extend, nullptr, perturbed, constraint);
      double iudr = common::Clamp(
          advisor::RobustnessEvaluator::Iudr(u, u_prime), -1.0, 2.0);
      y.push_back(iudr);
      for (int t = 0; t < analysis::kNumQueryChangeTypes; ++t) {
        x[static_cast<size_t>(t)].push_back(
            flags[static_cast<size_t>(t)] ? 1.0 : 0.0);
      }
    }
  }

  bench::PrintHeader("Fig. 16(a) — causation scores: change type -> IUDR");
  std::printf("%-20s %12s %12s %12s\n", "change type", "Regression", "ANM",
              "CDS");
  for (int t = 0; t < analysis::kNumQueryChangeTypes; ++t) {
    std::printf("%-20s",
                analysis::QueryChangeName(
                    static_cast<analysis::QueryChangeType>(t)));
    for (analysis::CausalModel m :
         {analysis::CausalModel::kRegression, analysis::CausalModel::kAnm,
          analysis::CausalModel::kCds}) {
      std::printf(" %12.4f",
                  analysis::CausationScore(m, x[static_cast<size_t>(t)], y));
    }
    std::printf("\n");
  }
  std::printf("(samples: %zu sargable perturbations)\n", y.size());

  bench::PrintHeader("Fig. 16(b) — change types among non-sargable workloads");
  std::printf("%-20s %10s\n", "change type", "share");
  for (int t = 0; t < analysis::kNumQueryChangeTypes; ++t) {
    double share = nonsarg_total > 0
                       ? static_cast<double>(nonsarg_counts[static_cast<size_t>(t)]) /
                             nonsarg_total
                       : 0.0;
    std::printf("%-20s %9.1f%%\n",
                analysis::QueryChangeName(
                    static_cast<analysis::QueryChangeType>(t)),
                100.0 * share);
  }
  std::printf("(non-sargable workloads: %d)\n", nonsarg_total);
  std::printf("\nShapes: the causal models agree the change types push IUDR "
              "up, and OR-conjunction / result-set blow-ups dominate the "
              "non-sargable population.\n");
  return 0;
}
