#include "engine/scratch.h"

namespace trap::engine {

namespace {

BatchScratch& ThreadScratch() {
  // One arena per thread, grown to its high-water mark and never shrunk.
  // Construction is the only allocation on the steady-state path.
  thread_local BatchScratch scratch;
  return scratch;
}

}  // namespace

ScratchLease::ScratchLease() {
  BatchScratch& tl = ThreadScratch();
  if (!tl.in_use) {
    tl.in_use = true;
    ++tl.generation;
    scratch_ = &tl;
    owned_ = false;
  } else {
    // Reentrant batch on this thread: private cold scratch.
    scratch_ = new BatchScratch();  // NOLINT(no-heap-on-hot-path): reentrant fallback, cold
    scratch_->generation = 1;
    owned_ = true;
  }
}

ScratchLease::~ScratchLease() {
  if (owned_) {
    delete scratch_;
  } else {
    scratch_->in_use = false;
  }
}

const BatchScratch& ScratchLease::ThreadLocalForTest() {
  return ThreadScratch();
}

}  // namespace trap::engine
