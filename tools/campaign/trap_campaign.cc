// trap_campaign: crash-tolerant distributed runner for the fault-injection
// campaign. Shards the deterministic campaign case space, fans the shards
// out to worker subprocesses (re-invocations of this binary with --worker),
// survives worker crashes/hangs/garbage with bounded seeded retries, and
// merges the results into a digest bit-identical to the single-process
// `trap_fuzz --fault-campaign` run. See DESIGN.md "Distributed campaigns".
//
// Usage:
//   trap_campaign --workers 4                       # distributed
//   trap_campaign --workers 0                       # in-process fallback
//   trap_campaign --workers 4 --journal j.log       # checkpoint each shard
//   trap_campaign --workers 4 --journal j.log --resume   # continue
//   TRAP_CAMPAIGN_FAULTS='worker.crash@p=0.3' trap_campaign --workers 4
//
// Exit codes: 0 = full coverage, zero violations; 1 = violations, failed
// shards, or interrupted; 2 = usage/config error.

#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "bench/harness.h"
#include "campaign/campaign.h"
#include "campaign/fault.h"
#include "campaign/worker.h"
#include "common/status.h"
#include "common/string_util.h"
#include "tools/common/cli.h"

namespace {

using trap::campaign::CampaignOptions;
using trap::campaign::CampaignReport;

int Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: trap_campaign [options]\n"
      "  --worker               run as a campaign worker (stdin/stdout\n"
      "                         frames; spawned by the coordinator)\n"
      "  --schema NAME          tpch | tpcds | transaction (default tpch)\n"
      "  --seed S               campaign seed (default 1)\n"
      "  --workers N            worker subprocesses; 0 = in-process\n"
      "                         (default 0)\n"
      "  --shards N             shard count; 0 = auto (default 0)\n"
      "  --max-attempts K       dispatch attempts per shard (default 4)\n"
      "  --unit-timeout-ms T    per-shard worker deadline (default 10000)\n"
      "  --journal PATH         checkpoint journal, written atomically\n"
      "                         after every completed shard\n"
      "  --resume               replay completed shards from --journal\n"
      "  --faults SPEC          injected worker faults, e.g.\n"
      "                         'worker.crash@p=0.3,worker.hang@p=0.1'\n"
      "                         (default: $TRAP_CAMPAIGN_FAULTS)\n"
      "  --fault-seed S         seed for worker-fault draws (default\n"
      "                         $TRAP_CAMPAIGN_FAULT_SEED or 0)\n"
      "  --stop-after-shards K  stop (simulating a coordinator crash)\n"
      "                         after K shard completions this run\n"
      "  --report NAME          write BENCH_NAME.json (cases/s, failed\n"
      "                         shards as structured failure records)\n"
      "  --digest               print only the final digest line\n");
  return out == stdout ? 0 : 2;
}

// The coordinator spawns workers by re-invoking itself; /proc/self/exe is
// exact even when argv[0] is a bare name found via PATH.
std::string SelfBinary(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker") == 0) {
      return trap::campaign::WorkerMain(stdin, stdout);
    }
  }

  CampaignOptions opts;
  opts.worker_binary = SelfBinary(argv[0]);
  std::string report_name;
  std::string faults_spec;
  long long fault_seed = -1;
  bool digest_only = false;

  // --worker was handled above, so the parser only ever sees coordinator
  // flags here.
  trap::cli::FlagParser flags(argc, argv, "trap_campaign");
  while (flags.Next()) {
    if (flags.Switch("--help") || flags.Switch("-h")) return Usage(stdout);
    if (flags.Switch("--resume")) {
      opts.resume = true;
      continue;
    }
    if (flags.Switch("--digest")) {
      digest_only = true;
      continue;
    }
    long long n = 0;
    if (flags.IntFlag("--seed", &n)) {
      if (flags.failed() || n < 0) return Usage(stderr);
      opts.base.seed = static_cast<std::uint64_t>(n);
      continue;
    }
    if (flags.IntFlag("--workers", &n)) {
      if (flags.failed() || n < 0 || n > 64) return Usage(stderr);
      opts.workers = static_cast<int>(n);
      continue;
    }
    if (flags.IntFlag("--shards", &n)) {
      if (flags.failed() || n < 0) return Usage(stderr);
      opts.shards = static_cast<int>(n);
      continue;
    }
    if (flags.IntFlag("--max-attempts", &n)) {
      if (flags.failed() || n < 1) return Usage(stderr);
      opts.max_attempts = static_cast<int>(n);
      continue;
    }
    if (flags.IntFlag("--unit-timeout-ms", &n)) {
      if (flags.failed() || n < 1) return Usage(stderr);
      opts.unit_timeout_ms = static_cast<int>(n);
      continue;
    }
    if (flags.IntFlag("--stop-after-shards", &n)) {
      if (flags.failed() || n < 0) return Usage(stderr);
      opts.stop_after_shards = static_cast<int>(n);
      continue;
    }
    if (flags.IntFlag("--fault-seed", &fault_seed)) {
      if (flags.failed() || fault_seed < 0) return Usage(stderr);
      continue;
    }
    if (flags.StringFlag("--schema", &opts.base.schema)) continue;
    if (flags.StringFlag("--journal", &opts.journal_path)) continue;
    if (flags.StringFlag("--faults", &faults_spec)) continue;
    if (flags.StringFlag("--report", &report_name)) continue;
    flags.Unknown();
    return Usage(stderr);
  }
  if (flags.failed()) return Usage(stderr);

  if (!faults_spec.empty()) {
    trap::common::StatusOr<trap::campaign::WorkerFaultPlan> plan =
        trap::campaign::ParseWorkerFaultSpec(
            faults_spec,
            fault_seed >= 0 ? static_cast<std::uint64_t>(fault_seed) : 0);
    if (!plan.ok()) {
      std::fprintf(stderr, "trap_campaign: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    opts.worker_faults = *plan;
  } else {
    // Same environment contract as the in-process registry's
    // TRAP_FAULTS: the harness can arm faults without touching flags.
    trap::common::StatusOr<trap::campaign::WorkerFaultPlan> plan =
        trap::campaign::WorkerFaultPlanFromEnv();
    if (!plan.ok()) {
      std::fprintf(stderr, "trap_campaign: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    opts.worker_faults = *plan;
    if (fault_seed >= 0) {
      opts.worker_faults.seed = static_cast<std::uint64_t>(fault_seed);
    }
  }

  std::FILE* log = digest_only ? nullptr : stdout;
  trap::common::StatusOr<CampaignReport> report =
      trap::common::Status::Internal("campaign did not run");
  if (!report_name.empty()) {
    trap::bench::BenchReport bench_report(report_name);
    double seconds = bench_report.TimePhase(
        "campaign",
        [&] { report = trap::campaign::RunCampaign(opts, log); });
    if (!report.ok()) {
      std::fprintf(stderr, "trap_campaign: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    bench_report.RecordMetric("campaign_cases", report->completed_cases);
    bench_report.RecordMetric("campaign_violations", report->violations);
    bench_report.RecordMetric("campaign_retries", report->retries);
    bench_report.RecordMetric("campaign_worker_restarts",
                              report->worker_restarts);
    bench_report.RecordMetric("campaign_failed_shards",
                              static_cast<double>(
                                  report->failed_shards.size()));
    if (seconds > 0.0) {
      bench_report.RecordMetric("campaign_cases_per_sec",
                                report->completed_cases / seconds);
    }
    for (const trap::advisor::FailureRecord& f : report->FailureRecords()) {
      bench_report.RecordFailure(f);
    }
    std::fprintf(stdout, "report: %s\n", bench_report.Write().c_str());
  } else {
    report = trap::campaign::RunCampaign(opts, log);
    if (!report.ok()) {
      std::fprintf(stderr, "trap_campaign: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
  }
  if (digest_only) {
    std::fprintf(stdout, "campaign digest: %016llx\n",
                 static_cast<unsigned long long>(report->digest));
  }
  return report->ok() ? 0 : 1;
}
