file(REMOVE_RECURSE
  "CMakeFiles/trap_core.dir/agent.cc.o"
  "CMakeFiles/trap_core.dir/agent.cc.o.d"
  "CMakeFiles/trap_core.dir/perturber.cc.o"
  "CMakeFiles/trap_core.dir/perturber.cc.o.d"
  "CMakeFiles/trap_core.dir/reference_tree.cc.o"
  "CMakeFiles/trap_core.dir/reference_tree.cc.o.d"
  "CMakeFiles/trap_core.dir/training.cc.o"
  "CMakeFiles/trap_core.dir/training.cc.o.d"
  "libtrap_core.a"
  "libtrap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
