#include "advisor/swirl.h"

#include <algorithm>
#include <cmath>

#include "nn/adam.h"
#include "nn/layers.h"

namespace trap::advisor {

namespace {

// Masked sampling / argmax over raw logits (probabilities computed outside
// the autograd graph; gradients flow through the in-graph log-softmax).
int SampleMasked(const nn::Matrix& logits, const std::vector<bool>& valid,
                 common::Rng* rng) {
  double mx = -1e300;
  for (int j = 0; j < logits.cols(); ++j) {
    if (valid[static_cast<size_t>(j)]) mx = std::max(mx, logits.at(0, j));
  }
  if (mx == -1e300) return -1;
  std::vector<double> probs(static_cast<size_t>(logits.cols()), 0.0);
  double sum = 0.0;
  for (int j = 0; j < logits.cols(); ++j) {
    if (valid[static_cast<size_t>(j)]) {
      probs[static_cast<size_t>(j)] = std::exp(logits.at(0, j) - mx);
      sum += probs[static_cast<size_t>(j)];
    }
  }
  if (rng == nullptr) {
    int best = -1;
    for (int j = 0; j < logits.cols(); ++j) {
      if (valid[static_cast<size_t>(j)] &&
          (best < 0 || logits.at(0, j) > logits.at(0, best))) {
        best = j;
      }
    }
    return best;
  }
  double r = rng->Uniform(0.0, sum);
  double acc = 0.0;
  for (int j = 0; j < logits.cols(); ++j) {
    acc += probs[static_cast<size_t>(j)];
    if (valid[static_cast<size_t>(j)] && r < acc) return j;
  }
  for (int j = logits.cols() - 1; j >= 0; --j) {
    if (valid[static_cast<size_t>(j)]) return j;
  }
  return -1;
}

}  // namespace

struct SwirlAdvisor::Impl {
  Impl(const engine::WhatIfOptimizer& what_if, SwirlOptions opts)
      : optimizer(&what_if), options(opts), rng(opts.seed) {}

  const engine::WhatIfOptimizer* optimizer;
  SwirlOptions options;
  common::Rng rng;

  ActionSpace actions;
  std::unique_ptr<StateEncoder> encoder;
  nn::ParameterStore store;
  nn::Mlp actor;    // state -> K+1 logits (last = stop)
  nn::Mlp critic;   // state -> value
  std::unique_ptr<nn::Adam> opt;
  bool trained = false;

  // Runs one episode; when `sample` the policy is stochastic and the episode
  // contributes to the policy-gradient update, otherwise greedy.
  engine::IndexConfig Rollout(const workload::Workload& w,
                              const TuningConstraint& constraint, bool sample,
                              double* episode_return,
                              const common::EvalContext& ctx = {}) {
    IndexSelectionEnv env(optimizer, &actions);
    env.Reset(&w, constraint, ctx);
    int k = actions.size();
    struct StepRecord {
      std::vector<double> state;
      std::vector<bool> valid;
      int action = -1;
      double reward = 0.0;
    };
    std::vector<StepRecord> steps;
    double total = 0.0;
    while (!env.Done()) {
      std::vector<bool> valid = env.ValidActions(options.action_masking);
      // The stop action becomes available once at least one index is built
      // (an empty recommendation is never useful).
      valid.push_back(!env.built().empty());
      std::vector<double> state =
          encoder->Encode(w, env.built(), constraint, ctx);
      // Forward pass outside the training graph for action selection.
      nn::Graph g;
      nn::Graph::VarId logits =
          actor.Forward(g, g.Input(nn::Matrix::RowVector(state)));
      int a = SampleMasked(g.value(logits), valid, sample ? &rng : nullptr);
      if (a < 0 || a == k) {
        if (sample) {
          steps.push_back(StepRecord{state, valid, k, 0.0});
        }
        break;
      }
      double r = env.Step(a);
      total += r;
      if (sample) steps.push_back(StepRecord{state, valid, a, r});
    }
    if (episode_return != nullptr) *episode_return = total;

    if (sample && !steps.empty()) {
      // Returns-to-go (gamma = 1; episodes are short).
      std::vector<double> returns(steps.size());
      double acc = 0.0;
      for (int i = static_cast<int>(steps.size()) - 1; i >= 0; --i) {
        acc += steps[static_cast<size_t>(i)].reward;
        returns[static_cast<size_t>(i)] = acc;
      }
      nn::Graph g;
      nn::Graph::VarId loss = g.Input(nn::Matrix(1, 1));
      for (size_t i = 0; i < steps.size(); ++i) {
        const StepRecord& s = steps[i];
        nn::Graph::VarId x = g.Input(nn::Matrix::RowVector(s.state));
        nn::Graph::VarId logits = actor.Forward(g, x);
        // Mask invalid actions with a large negative offset.
        nn::Matrix mask(1, k + 1);
        for (int j = 0; j <= k; ++j) {
          mask.at(0, j) = s.valid[static_cast<size_t>(j)] ? 0.0 : -1e9;
        }
        nn::Graph::VarId masked = g.Add(logits, g.Input(mask));
        nn::Graph::VarId logp_all = g.LogSoftmax(masked);
        nn::Graph::VarId logp = g.Pick(logp_all, 0, s.action);
        nn::Graph::VarId value = critic.Forward(g, x);
        double advantage = returns[i] - g.value(value).at(0, 0);
        // Actor: -advantage * logp; critic: (value - return)^2.
        loss = g.Add(loss, g.Scale(logp, -advantage));
        nn::Matrix target(1, 1);
        target.at(0, 0) = returns[i];
        nn::Graph::VarId verr = g.Sub(value, g.Input(target));
        loss = g.Add(loss, g.Scale(g.Mul(verr, verr), 0.5));
      }
      g.Backward(g.Sum(loss));
      opt->Step();
    }
    return env.built();
  }
};

SwirlAdvisor::SwirlAdvisor(const engine::WhatIfOptimizer& optimizer,
                           SwirlOptions options)
    : impl_(std::make_unique<Impl>(optimizer, options)) {}

SwirlAdvisor::~SwirlAdvisor() = default;

const ActionSpace& SwirlAdvisor::action_space() const { return impl_->actions; }

void SwirlAdvisor::Train(const std::vector<workload::Workload>& training,
                         const TuningConstraint& constraint) {
  TRAP_CHECK(!training.empty());
  Impl& im = *impl_;
  im.actions = BuildActionSpace(training, im.optimizer->schema(),
                                im.options.multi_column,
                                im.options.prune_candidates,
                                im.options.max_actions);
  im.encoder = std::make_unique<StateEncoder>(im.options.state, im.optimizer,
                                              &im.actions);
  int k = im.actions.size();
  im.actor = nn::Mlp(&im.store, {im.encoder->dim(), im.options.hidden, k + 1},
                     im.rng);
  im.critic = nn::Mlp(&im.store, {im.encoder->dim(), im.options.hidden, 1},
                      im.rng);
  im.opt = std::make_unique<nn::Adam>(im.store.parameters(),
                                      im.options.learning_rate);
  im.opt->set_max_grad_norm(5.0);
  for (int ep = 0; ep < im.options.episodes; ++ep) {
    const workload::Workload& w =
        training[static_cast<size_t>(im.rng.UniformInt(
            0, static_cast<int64_t>(training.size()) - 1))];
    double ret = 0.0;
    im.Rollout(w, constraint, /*sample=*/true, &ret);
  }
  im.trained = true;
}

common::StatusOr<engine::IndexConfig> SwirlAdvisor::TryRecommend(
    const workload::Workload& w, const TuningConstraint& constraint,
    const common::EvalContext& ctx) {
  if (!impl_->trained) {
    return common::Status::InvalidArgument(
        "SwirlAdvisor::Train must be called first");
  }
  TRAP_RETURN_IF_ERROR(EnterRecommend(name(), w, ctx));
  // The greedy rollout is one bounded episode; engine errors inside degrade
  // through the legacy cost wrappers, and the entry bracket above accounts
  // for deadline/fault injection at recommend granularity.
  return impl_->Rollout(w, constraint, /*sample=*/false, nullptr, ctx);
}

}  // namespace trap::advisor
