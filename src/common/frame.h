#ifndef TRAP_COMMON_FRAME_H_
#define TRAP_COMMON_FRAME_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"

namespace trap::common {

// Length-prefixed frame codec for the coordinator/worker wire protocol (and
// any future serve mode): each frame is
//
//   "TRAPF <decimal payload length>\n<payload bytes>"
//
// The explicit magic + decimal header keeps frames greppable in a captured
// stream and makes garbage trivially detectable: anything that does not
// start with the magic, carries a non-numeric or oversized length, or ends
// before the declared payload is classified as malformed/truncated rather
// than silently resynchronized. A transport that can be corrupted must fail
// loudly -- the campaign supervisor treats a malformed frame as a dead
// worker and re-dispatches the shard.

// Upper bound on a single payload; a longer declared length is malformed.
inline constexpr std::size_t kMaxFramePayload = std::size_t{16} << 20;

std::string EncodeFrame(std::string_view payload);

// Incremental decoder for nonblocking reads: feed bytes with Append, drain
// complete frames with Next. Malformed input is sticky -- once a stream is
// corrupt there is no trustworthy resynchronization point.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,      // *payload holds the next complete frame
    kNeedMore,   // no complete frame buffered yet
    kMalformed,  // the stream is corrupt; *error says why
  };

  void Append(const char* data, std::size_t n);
  Result Next(std::string* payload, std::string* error);

  // Bytes buffered but not yet consumed by Next.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool malformed_ = false;
  std::string malformed_error_;
};

// Blocking helpers over stdio streams (the worker side of the protocol).
// ReadFrame returns kUnavailable on clean EOF between frames, kInternal on
// EOF mid-frame or malformed input. WriteFrame flushes.
Status ReadFrame(std::FILE* in, FrameDecoder* decoder, std::string* payload);
Status WriteFrame(std::FILE* out, std::string_view payload);

}  // namespace trap::common

#endif  // TRAP_COMMON_FRAME_H_
