// Microbenchmarks (google-benchmark) of the substrate hot paths: what-if
// costing, plan construction, learned-utility prediction, reference-tree
// decoding. These bound the throughput of every experiment harness.

#include <benchmark/benchmark.h>

#include "catalog/datasets.h"
#include "engine/what_if.h"
#include "gbdt/features.h"
#include "gbdt/utility_model.h"
#include "trap/reference_tree.h"
#include "workload/generator.h"

namespace {

using namespace trap;
namespace tc = ::trap::trap;

struct Fixture {
  Fixture()
      : schema(catalog::MakeTpcH()),
        vocab(schema, 8),
        optimizer(schema),
        truth(schema),
        utility(optimizer, truth) {
    workload::QueryGenerator gen(vocab, workload::GeneratorOptions{}, 3);
    queries = gen.GeneratePool(64);
    utility.Train(queries, {engine::IndexConfig()});
    auto ship = *schema.FindColumn("lineitem", "l_shipdate");
    auto date = *schema.FindColumn("orders", "o_orderdate");
    config.Add(engine::Index{{ship}});
    config.Add(engine::Index{{date}});
  }
  catalog::Schema schema;
  sql::Vocabulary vocab;
  engine::WhatIfOptimizer optimizer;
  engine::TrueCostModel truth;
  gbdt::LearnedUtilityModel utility;
  std::vector<sql::Query> queries;
  engine::IndexConfig config;
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_WhatIfCostCached(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.optimizer.QueryCost(f.queries[i++ % f.queries.size()], f.config));
  }
}
BENCHMARK(BM_WhatIfCostCached);

void BM_PlanConstruction(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.optimizer.Plan(f.queries[i++ % f.queries.size()], f.config));
  }
}
BENCHMARK(BM_PlanConstruction);

void BM_TrueCost(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.truth.QueryCost(f.queries[i++ % f.queries.size()], f.config));
  }
}
BENCHMARK(BM_TrueCost);

void BM_UtilityPrediction(benchmark::State& state) {
  Fixture& f = fixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.utility.PredictQueryCost(f.queries[i++ % f.queries.size()], f.config));
  }
}
BENCHMARK(BM_UtilityPrediction);

void BM_PlanFeatureExtraction(benchmark::State& state) {
  Fixture& f = fixture();
  std::unique_ptr<engine::PlanNode> plan =
      f.optimizer.Plan(f.queries[0], f.config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt::ExtractPlanFeatures(*plan));
  }
}
BENCHMARK(BM_PlanFeatureExtraction);

void BM_ReferenceTreeRandomDecode(benchmark::State& state) {
  Fixture& f = fixture();
  common::Rng rng(9);
  size_t i = 0;
  for (auto _ : state) {
    tc::ReferenceTree tree(f.queries[i++ % f.queries.size()], f.vocab,
                           tc::PerturbationConstraint::kSharedTable, 5);
    while (!tree.Done()) tree.Advance(rng.Choice(tree.LegalTokens()));
    benchmark::DoNotOptimize(tree.edit_distance());
  }
}
BENCHMARK(BM_ReferenceTreeRandomDecode);

}  // namespace

BENCHMARK_MAIN();
