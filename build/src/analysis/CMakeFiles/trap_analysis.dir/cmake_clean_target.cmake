file(REMOVE_RECURSE
  "libtrap_analysis.a"
)
