# Empty dependencies file for bench_fig6_robustness.
# This may be replaced when dependencies are built.
