#include "catalog/stats_overlay.h"

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace trap::catalog {
namespace {

uint64_t FoldDouble(uint64_t h, double v) {
  return common::HashCombine(h, std::bit_cast<uint64_t>(v));
}

uint64_t FoldColumn(uint64_t h, const Column& c) {
  h = common::HashCombine(h, obs::StringHash(c.name));
  h = common::HashCombine(h, static_cast<uint64_t>(c.type));
  h = common::HashCombine(h, static_cast<uint64_t>(c.width_bytes));
  h = common::HashCombine(h, static_cast<uint64_t>(c.num_distinct));
  h = FoldDouble(h, c.min_value);
  h = FoldDouble(h, c.max_value);
  return FoldDouble(h, c.skew);
}

}  // namespace

ColumnStats StatsOf(const Column& column) {
  return ColumnStats{column.num_distinct, column.min_value, column.max_value,
                     column.skew};
}

void StatsOverlay::SetColumnStats(ColumnId id, const ColumnStats& stats) {
  TRAP_CHECK(stats.num_distinct >= 1);
  column_stats_[id] = stats;
}

void StatsOverlay::SetTableRows(int table, int64_t num_rows) {
  TRAP_CHECK(num_rows >= 1);
  table_rows_[table] = num_rows;
}

void StatsOverlay::AddTable(Table table) {
  TRAP_CHECK(!table.columns.empty());
  TRAP_CHECK(table.num_rows >= 1);
  added_tables_.push_back(std::move(table));
}

uint64_t StatsOverlay::Fingerprint() const {
  if (empty()) return 0;
  uint64_t h = 0x5d1f7a2bc9e44d31ull;
  for (const auto& [id, stats] : column_stats_) {
    h = common::HashCombine(h, static_cast<uint64_t>(id.table));
    h = common::HashCombine(h, static_cast<uint64_t>(id.column));
    h = common::HashCombine(h, static_cast<uint64_t>(stats.num_distinct));
    h = FoldDouble(h, stats.min_value);
    h = FoldDouble(h, stats.max_value);
    h = FoldDouble(h, stats.skew);
  }
  for (const auto& [table, rows] : table_rows_) {
    h = common::HashCombine(h, 0x7b0a9c3d51e6f824ull);
    h = common::HashCombine(h, static_cast<uint64_t>(table));
    h = common::HashCombine(h, static_cast<uint64_t>(rows));
  }
  for (const Table& t : added_tables_) {
    h = common::HashCombine(h, 0x13c8e55a9f0b6d72ull);
    h = common::HashCombine(h, obs::StringHash(t.name));
    h = common::HashCombine(h, static_cast<uint64_t>(t.num_rows));
    for (const Column& c : t.columns) h = FoldColumn(h, c);
  }
  // Reserve 0 for the base epoch so a non-empty overlay can never alias it.
  return h == 0 ? 1 : h;
}

Schema StatsOverlay::Apply(const Schema& base) const {
  std::vector<Table> tables;
  tables.reserve(static_cast<size_t>(base.num_tables()) +
                 added_tables_.size());
  for (int t = 0; t < base.num_tables(); ++t) tables.push_back(base.table(t));
  for (const Table& t : added_tables_) tables.push_back(t);

  const int num_tables = static_cast<int>(tables.size());
  for (const auto& [table, rows] : table_rows_) {
    TRAP_CHECK(table >= 0 && table < num_tables);
    tables[static_cast<size_t>(table)].num_rows = rows;
  }
  for (const auto& [id, stats] : column_stats_) {
    TRAP_CHECK(id.table >= 0 && id.table < num_tables);
    Table& t = tables[static_cast<size_t>(id.table)];
    TRAP_CHECK(id.column >= 0 &&
               id.column < static_cast<int>(t.columns.size()));
    Column& c = t.columns[static_cast<size_t>(id.column)];
    c.num_distinct = stats.num_distinct;
    c.min_value = stats.min_value;
    c.max_value = stats.max_value;
    c.skew = stats.skew;
  }
  // The Schema constructor recomputes column offsets, so appended tables
  // slot into the global column index right after the base tables.
  return Schema(base.name(), std::move(tables), base.join_edges());
}

}  // namespace trap::catalog
