#include "testing/case_gen.h"

#include <algorithm>

namespace trap::proptest {

CaseGen::CaseGen(const sql::Vocabulary& vocab, uint64_t stream_seed,
                 GenOptions options)
    : vocab_(&vocab),
      options_(options),
      rng_(stream_seed),
      query_gen_(vocab, options.query, common::HashCombine(stream_seed, 0x9)) {}

uint64_t CaseGen::StreamSeed(uint64_t seed, int case_index, int salt) {
  return common::HashCombine(
      common::HashCombine(seed, static_cast<uint64_t>(case_index)),
      static_cast<uint64_t>(salt));
}

sql::Query CaseGen::Query() { return query_gen_.Generate(); }

workload::Workload CaseGen::SmallWorkload(int min_queries, int max_queries) {
  workload::Workload w;
  int n = static_cast<int>(rng_.UniformInt(min_queries, max_queries));
  for (int i = 0; i < n; ++i) {
    w.queries.push_back(workload::WorkloadQuery{Query(), 1.0});
  }
  return w;
}

engine::Index CaseGen::RandomIndex(
    const std::vector<catalog::ColumnId>& columns) {
  TRAP_CHECK(!columns.empty());
  engine::Index index;
  catalog::ColumnId lead = rng_.Choice(columns);
  index.columns.push_back(lead);
  while (static_cast<int>(index.columns.size()) < options_.max_index_width &&
         rng_.Bernoulli(options_.multi_column_prob)) {
    // Extend with a distinct same-table column, if any remain.
    std::vector<catalog::ColumnId> extensions;
    for (catalog::ColumnId c : columns) {
      if (c.table != lead.table) continue;
      if (std::find(index.columns.begin(), index.columns.end(), c) !=
          index.columns.end()) {
        continue;
      }
      extensions.push_back(c);
    }
    if (extensions.empty()) break;
    index.columns.push_back(rng_.Choice(extensions));
  }
  return index;
}

engine::Index CaseGen::RandomIndexFor(const sql::Query& q) {
  return RandomIndex(q.ReferencedColumns());
}

std::vector<catalog::ColumnId> CaseGen::ReferencedBy(
    const workload::Workload& w) const {
  std::vector<catalog::ColumnId> out;
  for (const workload::WorkloadQuery& wq : w.queries) {
    for (catalog::ColumnId c : wq.query.ReferencedColumns()) {
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
  }
  return out;
}

engine::IndexConfig CaseGen::RandomConfigFor(const workload::Workload& w,
                                             int max_indexes) {
  engine::IndexConfig config;
  if (w.empty() || max_indexes <= 0) return config;
  std::vector<catalog::ColumnId> columns = ReferencedBy(w);
  int n = static_cast<int>(rng_.UniformInt(0, max_indexes));
  for (int i = 0; i < n; ++i) config.Add(RandomIndex(columns));
  return config;
}

}  // namespace trap::proptest
