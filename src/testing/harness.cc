#include "testing/harness.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "catalog/datasets.h"
#include "common/check.h"
#include "common/string_util.h"

namespace trap::proptest {

namespace {

// Shrinks `failure.repro` against its oracle and fills in the shrunk
// message/description fields.
void ShrinkFailure(OracleEnv& env, FailureReport* report) {
  OracleId id = report->oracle;
  ShrinkStats stats =
      ShrinkReproducer(&report->shrunk, *env.schema, [&](const Reproducer& r) {
        return CheckReproducer(id, env, r).has_value();
      });
  report->shrink_passes = stats.passes;
  report->shrink_accepted = stats.accepted;
  report->shrunk_message =
      CheckReproducer(id, env, report->shrunk).value_or(report->message);
  report->repro_text = DescribeReproducer(id, env, report->shrunk);
}

void PrintFailure(const FailureReport& report, std::FILE* log) {
  if (log == nullptr) return;
  std::fprintf(log,
               "FAIL %s: %s\n  replay: --schema %s --oracle %s --seed %llu "
               "--case %d\n",
               OracleName(report.oracle), report.message.c_str(),
               report.schema.c_str(), OracleName(report.oracle),
               static_cast<unsigned long long>(report.seed),
               report.case_index);
  if (!report.shrunk_message.empty() &&
      report.shrunk_message != report.message) {
    std::fprintf(log, "  shrunk (%d mutation(s) accepted): %s\n",
                 report.shrink_accepted, report.shrunk_message.c_str());
  }
  if (!report.repro_text.empty()) {
    std::fprintf(log, "  minimal reproducer:\n");
    std::istringstream lines(report.repro_text);
    std::string line;
    while (std::getline(lines, line)) {
      std::fprintf(log, "    %s\n", line.c_str());
    }
  }
}

std::optional<FailureReport> RunOneCase(OracleId id, OracleEnv& env,
                                        const std::string& schema_name,
                                        uint64_t seed, int case_index,
                                        bool shrink) {
  std::optional<OracleFailure> failure = RunOracle(id, env, seed, case_index);
  if (!failure.has_value()) return std::nullopt;
  FailureReport report;
  report.oracle = id;
  report.seed = seed;
  report.case_index = case_index;
  report.schema = schema_name;
  report.message = failure->message;
  report.shrunk = std::move(failure->repro);
  if (shrink) {
    ShrinkFailure(env, &report);
  } else {
    report.shrunk_message = report.message;
    report.repro_text = DescribeReproducer(id, env, report.shrunk);
  }
  return report;
}

}  // namespace

std::optional<catalog::Schema> MakeSchemaByName(std::string_view name) {
  if (name == "tpch") return catalog::MakeTpcH();
  if (name == "tpcds") return catalog::MakeTpcDs();
  if (name == "transaction") return catalog::MakeTransaction();
  return std::nullopt;
}

HarnessResult RunHarness(const HarnessOptions& opts, std::FILE* log) {
  HarnessResult result;
  std::optional<catalog::Schema> schema = MakeSchemaByName(opts.schema);
  TRAP_CHECK_MSG(schema.has_value(), "unknown schema name");
  std::vector<OracleId> oracles =
      opts.oracles.empty() ? AllOracles() : opts.oracles;
  OracleEnv env(*schema);
  for (int i = 0; i < opts.cases; ++i) {
    OracleId id = oracles[static_cast<size_t>(i) % oracles.size()];
    std::optional<FailureReport> report =
        RunOneCase(id, env, opts.schema, opts.seed, i, opts.shrink);
    ++result.cases_run;
    if (report.has_value()) {
      PrintFailure(*report, log);
      result.failures.push_back(*std::move(report));
      if (static_cast<int>(result.failures.size()) >= opts.max_failures) {
        break;
      }
    }
  }
  return result;
}

std::string FormatCaseFile(const CaseFile& c) {
  return common::StrFormat(
      "# trap_fuzz regression case -- replay with trap_fuzz --replay <file>\n"
      "schema %s\noracle %s\nseed %llu\ncase %d\n",
      c.schema.c_str(), OracleName(c.oracle),
      static_cast<unsigned long long>(c.seed), c.case_index);
}

std::optional<CaseFile> ParseCaseFile(std::string_view text,
                                      std::string* error) {
  CaseFile c;
  bool have_oracle = false;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key) || key[0] == '#') continue;
    std::string value;
    if (!(fields >> value)) {
      if (error != nullptr) *error = "missing value for key: " + key;
      return std::nullopt;
    }
    if (key == "schema") {
      c.schema = value;
    } else if (key == "oracle") {
      std::optional<OracleId> id = OracleFromName(value);
      if (!id.has_value()) {
        if (error != nullptr) *error = "unknown oracle: " + value;
        return std::nullopt;
      }
      c.oracle = *id;
      have_oracle = true;
    } else if (key == "seed") {
      char* end = nullptr;
      c.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        if (error != nullptr) *error = "bad seed: " + value;
        return std::nullopt;
      }
    } else if (key == "case") {
      char* end = nullptr;
      c.case_index = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == nullptr || *end != '\0') {
        if (error != nullptr) *error = "bad case index: " + value;
        return std::nullopt;
      }
    } else {
      if (error != nullptr) *error = "unknown key: " + key;
      return std::nullopt;
    }
  }
  if (!have_oracle) {
    if (error != nullptr) *error = "case file has no oracle line";
    return std::nullopt;
  }
  return c;
}

std::optional<CaseFile> LoadCaseFile(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open case file: " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseCaseFile(text.str(), error);
}

common::Status TryReplayCase(const CaseFile& c, bool shrink, std::FILE* log,
                             std::optional<FailureReport>* out) {
  out->reset();
  std::optional<catalog::Schema> schema = MakeSchemaByName(c.schema);
  if (!schema.has_value()) {
    return common::Status::InvalidArgument("unknown schema name in case file: " +
                                           c.schema);
  }
  OracleEnv env(*schema);
  *out = RunOneCase(c.oracle, env, c.schema, c.seed, c.case_index, shrink);
  if (out->has_value()) PrintFailure(**out, log);
  return common::Status::Ok();
}

std::optional<FailureReport> ReplayCase(const CaseFile& c, bool shrink,
                                        std::FILE* log) {
  std::optional<FailureReport> report;
  common::Status status = TryReplayCase(c, shrink, log, &report);
  TRAP_CHECK_MSG(status.ok(), status.message().c_str());
  return report;
}

std::optional<std::string> MinimizeCase(const CaseFile& c,
                                        std::string* error) {
  std::optional<catalog::Schema> schema = MakeSchemaByName(c.schema);
  if (!schema.has_value()) {
    if (error != nullptr) *error = "unknown schema: " + c.schema;
    return std::nullopt;
  }
  OracleEnv env(*schema);
  std::optional<FailureReport> report = RunOneCase(
      c.oracle, env, c.schema, c.seed, c.case_index, /*shrink=*/true);
  if (!report.has_value()) {
    if (error != nullptr) {
      *error = common::StrFormat(
          "case passes under oracle %s; nothing to minimize",
          OracleName(c.oracle));
    }
    return std::nullopt;
  }
  return common::StrFormat("oracle %s\nmessage %s\n%s",
                           OracleName(report->oracle),
                           report->shrunk_message.c_str(),
                           report->repro_text.c_str());
}

}  // namespace trap::proptest
