# Empty dependencies file for trap_engine.
# This may be replaced when dependencies are built.
