# Empty dependencies file for bench_fig17_distribution.
# This may be replaced when dependencies are built.
