
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/candidates.cc" "src/advisor/CMakeFiles/trap_advisor.dir/candidates.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/candidates.cc.o.d"
  "/root/repo/src/advisor/dqn_advisors.cc" "src/advisor/CMakeFiles/trap_advisor.dir/dqn_advisors.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/dqn_advisors.cc.o.d"
  "/root/repo/src/advisor/evaluation.cc" "src/advisor/CMakeFiles/trap_advisor.dir/evaluation.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/evaluation.cc.o.d"
  "/root/repo/src/advisor/heuristic_advisors.cc" "src/advisor/CMakeFiles/trap_advisor.dir/heuristic_advisors.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/heuristic_advisors.cc.o.d"
  "/root/repo/src/advisor/mcts.cc" "src/advisor/CMakeFiles/trap_advisor.dir/mcts.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/mcts.cc.o.d"
  "/root/repo/src/advisor/rl_common.cc" "src/advisor/CMakeFiles/trap_advisor.dir/rl_common.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/rl_common.cc.o.d"
  "/root/repo/src/advisor/swirl.cc" "src/advisor/CMakeFiles/trap_advisor.dir/swirl.cc.o" "gcc" "src/advisor/CMakeFiles/trap_advisor.dir/swirl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/trap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/trap_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/trap_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/trap_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/trap_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/trap_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
