#ifndef TRAP_TRAP_REFERENCE_TREE_H_
#define TRAP_TRAP_REFERENCE_TREE_H_

#include <vector>

#include "sql/query.h"
#include "sql/tokenizer.h"
#include "sql/vocabulary.h"
#include "trap/constraints.h"

namespace trap::trap {

// The Constraint-Aware Reference Tree of Section IV-D, realized as a
// stateful decoding automaton over the query's token sequence. At each step
// it exposes the legitimate vocabulary V^{p_t} for the current leaf (by node
// type and perturbation constraint), tracks the running edit distance
// against the budget epsilon, and performs Algorithm 1's look-ahead updates:
//
//   * replacing a predicate's column re-binds the downstream value leaf's
//     region from <old column>#value to <new column>#value;
//   * a column chosen in a clause is masked from the remaining column leaves
//     of that clause (no repeated columns), and columns still owed to later
//     original leaves are reserved so decoding can always terminate within
//     budget;
//   * choosing OR at the first conjunction leaf forces all later conjunction
//     leaves to OR (and vice versa);
//   * under Shared Table, "(.*)?" extension leaves at the end of SELECT and
//     WHERE admit new payload items and predicates while the budget allows.
//
// Every token sequence produced by driving this automaton parses back into
// a valid query (sql::FromTokens + ValidateQuery) whose token edit distance
// from the original is at most epsilon.
//
// Structural invariants kept for grammar validity: the join graph, FROM
// list and GROUP BY are fixed; in aggregated queries bare payload columns
// are fixed (they must mirror GROUP BY) and new payload items must be
// aggregated; ORDER BY columns of aggregated queries stay within GROUP BY.
class ReferenceTree {
 public:
  ReferenceTree(const sql::Query& q, const sql::Vocabulary& vocab,
                PerturbationConstraint constraint, int epsilon);

  // True when the output sequence is complete.
  bool Done() const;

  // Legitimate vocabulary ids for the current step (non-empty while !Done).
  const std::vector<int>& LegalTokens() const;

  // The original token id aligned with this step, or the STOP id at
  // extension steps. Useful for pretraining targets and diagnostics.
  int OriginalTokenId() const;

  // Commits one of LegalTokens() and advances.
  void Advance(int token_id);

  int edit_distance() const { return edit_used_; }
  int epsilon() const { return epsilon_; }
  const std::vector<sql::Token>& output() const { return output_; }
  const sql::Vocabulary& vocab() const { return *vocab_; }
  const sql::Query& original_query() const { return query_; }

  // Parses the finished output back into a query (requires Done()).
  sql::Query Materialize() const;

 private:
  enum class SlotKind {
    kFixed,         // legal = {original}
    kSelectAgg,     // aggregator of an aggregated payload item
    kSelectColumn,  // payload column
    kFilterColumn,
    kOperator,
    kValue,
    kConjunction,
    kOrderColumn,
    kSelectExtension,  // "(.*)?" at end of SELECT
    kWhereExtension,   // "(.*)?" at end of WHERE
  };
  struct Slot {
    SlotKind kind = SlotKind::kFixed;
    sql::Token original;
    int clause_index = -1;  // position of this item within its clause
    int pred_index = -1;    // owning filter predicate, for column/op/value
  };
  // Extension mini-state at an extension slot.
  enum class ExtState {
    kIdle,
    kSelectNeedColumn,
    kWhereNeedColumn,
    kWhereNeedOp,
    kWhereNeedValue,
  };

  void BuildSlots();
  void ComputeLegal();

  bool Modifiable(SlotKind kind) const;
  int RemainingBudget() const { return epsilon_ - edit_used_; }

  // Column universes.
  std::vector<catalog::ColumnId> AllowedColumns() const;  // by constraint
  void AppendColumnChoices(const std::vector<catalog::ColumnId>& used,
                           const std::vector<catalog::ColumnId>& reserved,
                           std::vector<int>* out) const;

  // Original columns of yet-to-come slots of `kind` within the same clause.
  std::vector<catalog::ColumnId> ReservedColumns(SlotKind kind) const;

  sql::Query query_;
  const sql::Vocabulary* vocab_;
  PerturbationConstraint constraint_;
  int epsilon_;

  std::vector<Slot> slots_;
  size_t pos_ = 0;
  int edit_used_ = 0;
  std::vector<sql::Token> output_;
  std::vector<int> legal_;  // current step's legal ids

  // Dynamic clause state.
  std::vector<catalog::ColumnId> select_cols_used_;
  std::vector<catalog::ColumnId> filter_cols_used_;
  std::vector<catalog::ColumnId> order_cols_used_;
  std::vector<catalog::ColumnId> current_pred_column_;  // per filter pred
  bool conjunction_decided_ = false;
  sql::Conjunction conjunction_choice_ = sql::Conjunction::kAnd;
  bool query_has_aggregates_ = false;

  // Extension machinery.
  ExtState ext_state_ = ExtState::kIdle;
  catalog::ColumnId ext_column_;
  int select_extensions_ = 0;
  int where_extensions_ = 0;
  static constexpr int kMaxExtensionsPerClause = 2;
};

}  // namespace trap::trap

#endif  // TRAP_TRAP_REFERENCE_TREE_H_
