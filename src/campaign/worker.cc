#include "campaign/worker.h"

#include <optional>
#include <string>
#include <vector>

#include <signal.h>

#include "campaign/fault.h"
#include "campaign/wire.h"
#include "common/frame.h"
#include "common/rpc.h"
#include "common/string_util.h"
#include "testing/fault_campaign.h"

namespace trap::campaign {

namespace {

using proptest::CampaignCaseSpec;
using proptest::CampaignEnv;
using proptest::FaultCampaignOptions;

namespace rpc = common::rpc;

struct WorkerState {
  std::optional<CampaignEnv> env;
  std::vector<CampaignCaseSpec> cases;
  WorkerFaultPlan faults;
};

common::Status WriteError(std::FILE* out, std::uint64_t id,
                          const common::Status& why) {
  return common::WriteFrame(out,
                            rpc::EncodeResponse(rpc::ErrorResponse(id, why)));
}

// Builds the environment from an init request; replies ok or error.
common::Status HandleInit(const rpc::Request& req, WorkerState* state,
                          std::FILE* out) {
  const JsonValue& msg = req.params;
  FaultCampaignOptions opts;
  std::optional<std::string> schema = msg.StringAt("schema");
  std::optional<std::uint64_t> seed = msg.HexAt("seed");
  std::optional<std::uint64_t> step_budget = msg.HexAt("step_budget");
  std::optional<std::int64_t> workloads = msg.IntAt("workloads");
  const JsonValue* probabilities = msg.Find("probabilities");
  const JsonValue* fault_p = msg.Find("fault_p");
  std::optional<std::uint64_t> fault_seed = msg.HexAt("fault_seed");
  if (!schema || !seed || !step_budget || !workloads ||
      probabilities == nullptr ||
      probabilities->kind != JsonValue::Kind::kArray || fault_p == nullptr ||
      fault_p->kind != JsonValue::Kind::kArray ||
      fault_p->items.size() != kNumWorkerFaults || !fault_seed) {
    return WriteError(out, req.id,
                      common::Status::InvalidArgument("malformed init"));
  }
  opts.schema = *schema;
  opts.seed = *seed;
  opts.step_budget = *step_budget;
  opts.workloads = static_cast<int>(*workloads);
  opts.probabilities.clear();
  for (const JsonValue& p : probabilities->items) {
    if (p.kind != JsonValue::Kind::kNumber) {
      return WriteError(out, req.id,
                        common::Status::InvalidArgument("bad probability"));
    }
    opts.probabilities.push_back(p.number_value);
  }
  for (int i = 0; i < kNumWorkerFaults; ++i) {
    const JsonValue& p = fault_p->items[static_cast<size_t>(i)];
    state->faults.probability[i] =
        p.kind == JsonValue::Kind::kNumber ? p.number_value : 0.0;
  }
  state->faults.seed = *fault_seed;
  common::StatusOr<CampaignEnv> env = CampaignEnv::Make(opts);
  if (!env.ok()) {
    return WriteError(out, req.id, env.status());
  }
  state->cases = proptest::EnumerateCampaignCases(opts);
  state->env.emplace(*std::move(env));
  JsonValue result = JsonValue::Object();
  result.Set("cases",
             JsonValue::Number(static_cast<double>(state->cases.size())));
  return common::WriteFrame(
      out, rpc::EncodeResponse(rpc::OkResponse(req.id, std::move(result))));
}

common::Status HandleUnit(const rpc::Request& req, const WorkerState& state,
                          std::FILE* out) {
  const JsonValue& msg = req.params;
  std::optional<std::int64_t> shard = msg.IntAt("shard");
  std::optional<std::int64_t> begin = msg.IntAt("begin");
  std::optional<std::int64_t> end = msg.IntAt("end");
  std::optional<std::uint64_t> salt = msg.HexAt("salt");
  const int n = static_cast<int>(state.cases.size());
  if (!shard || !begin || !end || !salt || *begin < 0 || *end < *begin ||
      *end > n || !state.env.has_value()) {
    return WriteError(out, req.id,
                      common::Status::InvalidArgument("malformed unit"));
  }
  // Injected process-level faults, drawn per (shard, attempt) salt.
  if (WorkerFaultFires(state.faults, WorkerFault::kHang, *salt)) {
    std::fprintf(stderr, "worker: injected hang on shard %lld\n",
                 static_cast<long long>(*shard));
    return common::Status::Ok();  // swallow the unit; never reply
  }
  if (WorkerFaultFires(state.faults, WorkerFault::kGarbageFrame, *salt)) {
    std::fprintf(stderr, "worker: injected garbage frame on shard %lld\n",
                 static_cast<long long>(*shard));
    const std::string garbage =
        common::StrFormat("GARBAGE-%016llx-NOT-A-FRAME\n",
                          static_cast<unsigned long long>(*salt));
    if (std::fwrite(garbage.data(), 1, garbage.size(), out) !=
            garbage.size() ||
        std::fflush(out) != 0) {
      return common::Status::Unavailable("stdout gone");
    }
    return common::Status::Ok();
  }
  const bool crash =
      WorkerFaultFires(state.faults, WorkerFault::kCrash, *salt);
  // Crash midway: some cases have already run (and their side effects on
  // the in-process fault registry are real), but no result frame escapes.
  const int crash_at =
      crash ? static_cast<int>(*begin) + static_cast<int>(*end - *begin) / 2
            : -1;
  // The case array is built by string concatenation (EncodeCampaignCase
  // emits JSON text); the surrounding envelope matches rpc::EncodeResponse
  // byte-for-byte in field order so the coordinator's DecodeResponse sees
  // one dialect.
  std::string payload = common::StrFormat(
      "{\"rpc\":%d,\"id\":%s,\"status\":\"OK\","
      "\"result\":{\"shard\":%lld,\"cases\":[",
      rpc::kProtocolVersion, JsonHex(req.id).c_str(),
      static_cast<long long>(*shard));
  for (int i = static_cast<int>(*begin); i < static_cast<int>(*end); ++i) {
    if (i == crash_at) {
      std::fprintf(stderr, "worker: injected crash on shard %lld\n",
                   static_cast<long long>(*shard));
      raise(SIGKILL);
    }
    proptest::CampaignCase c =
        state.env->RunCase(state.cases[static_cast<size_t>(i)]);
    if (i != static_cast<int>(*begin)) payload += ",";
    payload += EncodeCampaignCase(c);
  }
  payload += "]}}";
  return common::WriteFrame(out, payload);
}

}  // namespace

int WorkerMain(std::FILE* in, std::FILE* out) {
  common::FrameDecoder decoder;
  WorkerState state;
  // The handshake: version + role, before any response. The coordinator
  // rejects the whole worker on a mismatched first frame.
  if (common::Status hello =
          common::WriteFrame(out, rpc::EncodeHello("campaign-worker"));
      !hello.ok()) {
    std::fprintf(stderr, "worker: %s\n", hello.ToString().c_str());
    return 3;
  }
  for (;;) {
    std::string payload;
    common::Status read = common::ReadFrame(in, &decoder, &payload);
    if (!read.ok()) {
      // Clean EOF between frames is the coordinator closing our stdin --
      // the polite shutdown. Anything else is a protocol failure.
      if (read.code() == common::StatusCode::kUnavailable) return 0;
      std::fprintf(stderr, "worker: %s\n", read.ToString().c_str());
      return 3;
    }
    common::StatusOr<rpc::Request> req = rpc::DecodeRequest(payload);
    if (!req.ok()) {
      std::fprintf(stderr, "worker: %s\n", req.status().ToString().c_str());
      return 3;
    }
    common::Status handled = common::Status::Ok();
    if (req->method == "exit") {
      return 0;
    } else if (req->method == "init") {
      handled = HandleInit(*req, &state, out);
    } else if (req->method == "run_shard") {
      handled = HandleUnit(*req, state, out);
    } else {
      std::fprintf(stderr, "worker: unknown method '%s'\n",
                   req->method.c_str());
      return 3;
    }
    if (!handled.ok()) {
      std::fprintf(stderr, "worker: %s\n", handled.ToString().c_str());
      return 3;
    }
  }
}

}  // namespace trap::campaign
