#include "analysis/query_change.h"

#include <algorithm>
#include <set>

namespace trap::analysis {

const char* QueryChangeName(QueryChangeType t) {
  switch (t) {
    case QueryChangeType::kResultSetEnlarged: return "ResultSet Size";
    case QueryChangeType::kUnequalOperator: return "Unequal Operator";
    case QueryChangeType::kEqToRange: return "Eq-to-Range";
    case QueryChangeType::kSelectUncovered: return "Select Uncovered";
    case QueryChangeType::kOrConjunction: return "OR Conjunction";
    case QueryChangeType::kGroupOrderChanged: return "Group/Order Changed";
  }
  return "?";
}

namespace {

bool SelectCoveredByWhere(const sql::Query& q) {
  std::set<catalog::ColumnId> where_cols;
  for (const sql::Predicate& p : q.filters) where_cols.insert(p.column);
  for (const sql::JoinPredicate& j : q.joins) {
    where_cols.insert(j.left);
    where_cols.insert(j.right);
  }
  for (const sql::SelectItem& s : q.select) {
    if (where_cols.count(s.column) == 0) return false;
  }
  return true;
}

}  // namespace

std::array<bool, kNumQueryChangeTypes> ClassifyQueryChanges(
    const sql::Query& original, const sql::Query& perturbed,
    const engine::CostModel& model) {
  std::array<bool, kNumQueryChangeTypes> flags{};
  engine::IndexConfig none;

  double card_before =
      std::max(1.0, model.Plan(original, none)->cardinality);
  double card_after = std::max(1.0, model.Plan(perturbed, none)->cardinality);
  flags[static_cast<size_t>(QueryChangeType::kResultSetEnlarged)] =
      card_after > 10.0 * card_before;

  bool had_ne = std::any_of(original.filters.begin(), original.filters.end(),
                            [](const sql::Predicate& p) {
                              return p.op == sql::CmpOp::kNe;
                            });
  bool has_ne = std::any_of(perturbed.filters.begin(), perturbed.filters.end(),
                            [](const sql::Predicate& p) {
                              return p.op == sql::CmpOp::kNe;
                            });
  flags[static_cast<size_t>(QueryChangeType::kUnequalOperator)] =
      has_ne && !had_ne;

  // Eq-to-range: a predicate on the same column flipped from = to a range.
  auto is_range = [](sql::CmpOp op) {
    return op == sql::CmpOp::kLt || op == sql::CmpOp::kLe ||
           op == sql::CmpOp::kGt || op == sql::CmpOp::kGe;
  };
  bool eq_to_range = false;
  for (const sql::Predicate& p0 : original.filters) {
    if (p0.op != sql::CmpOp::kEq) continue;
    for (const sql::Predicate& p1 : perturbed.filters) {
      if (p1.column == p0.column && is_range(p1.op)) eq_to_range = true;
    }
  }
  flags[static_cast<size_t>(QueryChangeType::kEqToRange)] = eq_to_range;

  flags[static_cast<size_t>(QueryChangeType::kSelectUncovered)] =
      SelectCoveredByWhere(original) && !SelectCoveredByWhere(perturbed);

  flags[static_cast<size_t>(QueryChangeType::kOrConjunction)] =
      original.conjunction == sql::Conjunction::kAnd &&
      perturbed.conjunction == sql::Conjunction::kOr &&
      perturbed.filters.size() > 1;

  flags[static_cast<size_t>(QueryChangeType::kGroupOrderChanged)] =
      original.group_by != perturbed.group_by ||
      original.order_by != perturbed.order_by;

  return flags;
}

}  // namespace trap::analysis
